"""Tests for norm, conv, attention, RoPE, Mamba and Module plumbing."""

import numpy as np
import pytest

from repro import nn
from repro.nn.rope import apply_rope, rope_angles
from repro.tensor import Tensor


class TestModulePlumbing:
    def test_named_parameters_recursive(self, rng):
        att = nn.CausalSelfAttention(8, 2, rng=rng)
        names = {n for n, _ in att.named_parameters()}
        assert "q_proj.weight" in names and "o_proj.weight" in names

    def test_freeze(self, rng):
        layer = nn.Linear(4, 4, rng=rng)
        layer.freeze()
        assert all(not p.requires_grad for p in layer.parameters())

    def test_train_eval_propagates(self, rng):
        att = nn.CausalSelfAttention(8, 2, rng=rng)
        att.eval()
        assert not att.q_proj.training
        att.train()
        assert att.q_proj.training

    def test_num_parameters(self, rng):
        layer = nn.Linear(4, 3, bias=True, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_state_dict_roundtrip(self, rng):
        a = nn.Linear(4, 4, rng=rng)
        b = nn.Linear(4, 4, rng=np.random.default_rng(777))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_mismatch_raises(self, rng):
        a = nn.Linear(4, 4, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"bogus": np.ones(1)})

    def test_module_list(self, rng):
        layers = nn.ModuleList([nn.Linear(2, 2, rng=rng) for _ in range(3)])
        assert len(layers) == 3
        assert sum(1 for _ in layers.parameters()) == 3


class TestRMSNorm:
    def test_unit_rms_output(self, rng):
        norm = nn.RMSNorm(16)
        out = norm(Tensor(rng.standard_normal((4, 16)) * 10))
        rms = np.sqrt((out.data**2).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, rtol=1e-3)

    def test_scale_invariance(self, rng):
        norm = nn.RMSNorm(8)
        x = rng.standard_normal((2, 8))
        np.testing.assert_allclose(norm(Tensor(x)).data, norm(Tensor(5 * x)).data, rtol=1e-6)

    def test_weight_scales_output(self, rng):
        norm = nn.RMSNorm(8)
        norm.weight.data[:] = 2.0
        x = rng.standard_normal((2, 8))
        base = x / np.sqrt((x**2).mean(-1, keepdims=True) + 1e-6)
        np.testing.assert_allclose(norm(Tensor(x)).data, 2 * base, rtol=1e-5)

    def test_gradient_flows(self, rng):
        norm = nn.RMSNorm(8)
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        norm(x).sum().backward()
        assert x.grad is not None and norm.weight.grad is not None


class TestCausalConv:
    def test_causality(self, rng):
        """Changing a future input must not affect past outputs."""
        conv = nn.CausalDepthwiseConv1d(3, kernel_size=4, rng=rng)
        x = rng.standard_normal((1, 10, 3))
        base = conv(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 7] += 100.0
        out = conv(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :7], base[0, :7], rtol=1e-10)
        assert not np.allclose(out[0, 7:], base[0, 7:])

    def test_depthwise_independence(self, rng):
        conv = nn.CausalDepthwiseConv1d(2, kernel_size=2, bias=False, rng=rng)
        x = np.zeros((1, 4, 2))
        x[0, :, 0] = 1.0
        out = conv(Tensor(x)).data
        np.testing.assert_allclose(out[0, :, 1], 0.0, atol=1e-12)

    def test_matches_manual_convolution(self, rng):
        conv = nn.CausalDepthwiseConv1d(1, kernel_size=2, bias=False, rng=rng)
        w = conv.weight.data[0]
        x = np.array([[[1.0], [2.0], [3.0]]])
        out = conv(Tensor(x)).data[0, :, 0]
        expected = [w[1] * 1, w[0] * 1 + w[1] * 2, w[0] * 2 + w[1] * 3]
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_wrong_channels_raises(self, rng):
        conv = nn.CausalDepthwiseConv1d(3, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.ones((1, 5, 4))))


class TestRoPE:
    def test_angle_table_shapes(self):
        cos, sin = rope_angles(10, 8)
        assert cos.shape == (10, 8) and sin.shape == (10, 8)

    def test_position_zero_is_identity(self, rng):
        cos, sin = rope_angles(4, 8)
        x = Tensor(rng.standard_normal((1, 1, 4, 8)))
        out = apply_rope(x, cos, sin)
        np.testing.assert_allclose(out.data[0, 0, 0], x.data[0, 0, 0], rtol=1e-12)

    def test_norm_preserving(self, rng):
        cos, sin = rope_angles(6, 8)
        x = rng.standard_normal((1, 2, 6, 8))
        out = apply_rope(Tensor(x), cos, sin).data
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), rtol=1e-9
        )

    def test_relative_property_of_dot_products(self, rng):
        """<rope(q, m), rope(k, n)> depends only on m - n."""
        head_dim = 8
        cos, sin = rope_angles(16, head_dim)
        q = rng.standard_normal(head_dim)
        k = rng.standard_normal(head_dim)

        def dot(m, n):
            qm = apply_rope(Tensor(q.reshape(1, 1, 1, -1)), cos[m : m + 1], sin[m : m + 1]).data
            kn = apply_rope(Tensor(k.reshape(1, 1, 1, -1)), cos[n : n + 1], sin[n : n + 1]).data
            return float((qm * kn).sum())

        assert dot(3, 1) == pytest.approx(dot(10, 8), rel=1e-9)

    def test_odd_head_dim_raises(self):
        with pytest.raises(ValueError):
            rope_angles(4, 7)


class TestAttention:
    def test_output_shape(self, rng):
        att = nn.CausalSelfAttention(16, 4, num_kv_heads=2, rng=rng)
        out = att(Tensor(rng.standard_normal((2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_causality(self, rng):
        att = nn.CausalSelfAttention(8, 2, rng=rng)
        x = rng.standard_normal((1, 8, 8))
        base = att(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0
        out = att(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-8)
        assert not np.allclose(out[0, 5:], base[0, 5:])

    def test_invalid_head_config(self, rng):
        with pytest.raises(ValueError):
            nn.CausalSelfAttention(10, 3, rng=rng)
        with pytest.raises(ValueError):
            nn.CausalSelfAttention(12, 4, num_kv_heads=3, rng=rng)

    def test_gqa_matches_mha_when_kv_repeated(self, rng):
        """With kv weights replicated, GQA equals full MHA."""
        mha = nn.CausalSelfAttention(8, 2, num_kv_heads=2, rng=np.random.default_rng(5))
        gqa = nn.CausalSelfAttention(8, 2, num_kv_heads=1, rng=np.random.default_rng(5))
        # Copy shared projections; tile kv head 0 of gqa into both mha heads.
        mha.q_proj.weight.data = gqa.q_proj.weight.data.copy()
        mha.o_proj.weight.data = gqa.o_proj.weight.data.copy()
        mha.k_proj.weight.data = np.tile(gqa.k_proj.weight.data, (2, 1))
        mha.v_proj.weight.data = np.tile(gqa.v_proj.weight.data, (2, 1))
        x = Tensor(rng.standard_normal((1, 5, 8)))
        np.testing.assert_allclose(mha(x).data, gqa(x).data, rtol=1e-9)

    def test_gradients_flow(self, rng):
        att = nn.CausalSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 8)), requires_grad=True)
        (att(x) ** 2).sum().backward()
        assert x.grad is not None
        assert att.q_proj.weight.grad is not None


class TestMamba:
    def test_output_shape(self, rng):
        mixer = nn.MambaMixer(8, state_dim=4, rng=rng)
        out = mixer(Tensor(rng.standard_normal((2, 6, 8))))
        assert out.shape == (2, 6, 8)

    def test_causality(self, rng):
        mixer = nn.MambaMixer(8, state_dim=4, rng=rng)
        x = rng.standard_normal((1, 8, 8))
        base = mixer(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 6] += 5.0
        out = mixer(Tensor(x2)).data
        np.testing.assert_allclose(out[0, :6], base[0, :6], atol=1e-8)

    def test_gradients_reach_all_parameters(self, rng):
        mixer = nn.MambaMixer(8, state_dim=4, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 8)), requires_grad=True)
        (mixer(x) ** 2).sum().backward()
        for name, param in mixer.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_state_decay_is_stable(self, rng):
        """A(-exp(a_log)) keeps decay in (0, 1): long inputs stay finite."""
        mixer = nn.MambaMixer(4, state_dim=2, rng=rng)
        out = mixer(Tensor(rng.standard_normal((1, 200, 4))))
        assert np.all(np.isfinite(out.data))
