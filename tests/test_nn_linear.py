"""Tests for Linear / QuantizedLinear / LoRALinear."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = nn.Linear(5, 7, rng=rng)
        out = layer(Tensor(rng.standard_normal((3, 5))))
        assert out.shape == (3, 7)

    def test_bias(self, rng):
        layer = nn.Linear(4, 2, bias=True, rng=rng)
        layer.weight.data[:] = 0.0
        layer.bias.data[:] = [1.0, -1.0]
        out = layer(Tensor(rng.standard_normal((2, 4))))
        np.testing.assert_allclose(out.data, [[1.0, -1.0]] * 2)

    def test_matches_manual_matmul(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data.T)

    def test_batched_3d_input(self, rng):
        layer = nn.Linear(4, 3, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 5, 4))))
        assert out.shape == (2, 5, 3)


class TestQuantizedLinear:
    def test_close_to_dense_forward(self, rng):
        dense = nn.Linear(16, 8, rng=rng)
        quantized = nn.QuantizedLinear.from_linear(dense)
        x = Tensor(rng.standard_normal((4, 16)))
        np.testing.assert_allclose(quantized(x).data, dense(x).data, atol=0.5, rtol=0.3)

    def test_has_no_trainable_parameters(self, rng):
        quantized = nn.QuantizedLinear.from_linear(nn.Linear(8, 8, rng=rng))
        assert list(quantized.parameters()) == []

    def test_gradient_flows_to_input(self, rng):
        quantized = nn.QuantizedLinear.from_linear(nn.Linear(8, 4, rng=rng))
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        quantized(x).sum().backward()
        assert x.grad is not None

    def test_counts_dequant_calls(self, rng):
        quantized = nn.QuantizedLinear.from_linear(nn.Linear(8, 4, rng=rng))
        x = Tensor(rng.standard_normal((2, 8)))
        quantized(x)
        quantized(x)
        assert quantized.dequant_calls == 2

    def test_rejects_bias(self, rng):
        with pytest.raises(ValueError):
            nn.QuantizedLinear.from_linear(nn.Linear(4, 4, bias=True, rng=rng))

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            nn.QuantizedLinear(4, 4, np.ones((3, 4)))


class TestLoRALinear:
    def test_noop_at_initialization(self, rng):
        base = nn.Linear(6, 4, rng=rng)
        expected = base(Tensor(np.eye(6)))
        lora = nn.LoRALinear(base, rank=2, rng=rng)
        np.testing.assert_allclose(lora(Tensor(np.eye(6))).data, expected.data)

    def test_base_frozen_adapters_trainable(self, rng):
        lora = nn.LoRALinear(nn.Linear(6, 4, rng=rng), rank=2, rng=rng)
        trainable = {n for n, p in lora.named_parameters() if p.requires_grad}
        assert trainable == {"lora_a", "lora_b"}

    def test_adapter_param_count(self, rng):
        lora = nn.LoRALinear(nn.Linear(6, 4, rng=rng), rank=3, rng=rng)
        assert lora.num_adapter_parameters() == 3 * 6 + 4 * 3

    def test_merged_weight_matches_forward(self, rng):
        lora = nn.LoRALinear(nn.Linear(5, 3, rng=rng), rank=2, rng=rng)
        lora.lora_b.data[:] = rng.standard_normal(lora.lora_b.shape)
        x = rng.standard_normal((2, 5))
        np.testing.assert_allclose(
            lora(Tensor(x)).data, x @ lora.merged_weight().T, rtol=1e-9
        )

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            nn.LoRALinear(nn.Linear(4, 4, rng=rng), rank=0)

    def test_over_quantized_base(self, rng):
        base = nn.QuantizedLinear.from_linear(nn.Linear(8, 4, rng=rng))
        lora = nn.LoRALinear(base, rank=2, rng=rng)
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        lora(x).sum().backward()
        assert lora.lora_a.grad is not None or lora.lora_b.grad is not None
