"""Tests for the causal-LM cross-entropy loss."""

import numpy as np
import pytest

from repro.nn import IGNORE_INDEX, cross_entropy, token_accuracy
from repro.tensor import Tensor


class TestCrossEntropy:
    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((4, 5))
        targets = np.array([0, 2, 4, 1])
        loss = cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(-1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(-1, keepdims=True))
        expected = -log_probs[np.arange(4), targets].mean()
        assert loss == pytest.approx(expected, rel=1e-9)

    def test_uniform_logits_give_log_vocab(self):
        logits = np.zeros((3, 10))
        loss = cross_entropy(Tensor(logits), np.array([1, 2, 3])).item()
        assert loss == pytest.approx(np.log(10), rel=1e-9)

    def test_ignore_index_masks_positions(self, rng):
        logits = rng.standard_normal((4, 5))
        targets = np.array([0, IGNORE_INDEX, IGNORE_INDEX, 1])
        loss_masked = cross_entropy(Tensor(logits), targets).item()
        loss_pair = cross_entropy(Tensor(logits[[0, 3]]), np.array([0, 1])).item()
        assert loss_masked == pytest.approx(loss_pair, rel=1e-9)

    def test_3d_input_flattened(self, rng):
        logits = rng.standard_normal((2, 3, 5))
        targets = rng.integers(0, 5, (2, 3))
        loss3 = cross_entropy(Tensor(logits), targets).item()
        loss2 = cross_entropy(Tensor(logits.reshape(6, 5)), targets.reshape(6)).item()
        assert loss3 == pytest.approx(loss2, rel=1e-12)

    def test_all_masked_raises(self, rng):
        logits = rng.standard_normal((2, 5))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(logits), np.full(2, IGNORE_INDEX))

    def test_wrong_rank_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.standard_normal(5)), np.array([1]))

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        targets = np.array([1, 3])
        cross_entropy(logits, targets).backward()
        shifted = logits.data - logits.data.max(-1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(-1, keepdims=True)
        onehot = np.eye(4)[targets]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 2, rtol=1e-8)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 4), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2])).item()
        assert loss < 1e-6


class TestTokenAccuracy:
    def test_all_correct(self):
        logits = np.eye(4)[np.array([0, 1, 2])] * 10
        assert token_accuracy(Tensor(logits), np.array([0, 1, 2])) == 1.0

    def test_ignores_masked(self):
        logits = np.eye(3)[np.array([0, 1])] * 10
        targets = np.array([0, IGNORE_INDEX])
        assert token_accuracy(Tensor(logits), targets) == 1.0

    def test_all_masked_returns_zero(self):
        logits = np.zeros((2, 3))
        assert token_accuracy(Tensor(logits), np.full(2, IGNORE_INDEX)) == 0.0
