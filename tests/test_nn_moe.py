"""Tests for the MoE layer, router and experts (the paper's Fig. 12)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import nn
from repro.tensor import Tensor


def make_moe(rng, dim=6, experts=4, top_k=2, expert_type="swiglu"):
    factory = {
        "swiglu": lambda: nn.SwiGLUExpert(dim, 2 * dim, rng=rng),
        "gelu": lambda: nn.GeluExpert(dim, 2 * dim, rng=rng),
    }[expert_type]
    return nn.MoELayer(dim, experts, top_k, factory, rng=rng)


class TestExperts:
    def test_swiglu_has_three_matrices(self, rng):
        expert = nn.SwiGLUExpert(4, 8, rng=rng)
        names = {n for n, _ in expert.named_parameters()}
        assert {"w1.weight", "w2.weight", "w3.weight"} <= names

    def test_gelu_has_two_matrices(self, rng):
        expert = nn.GeluExpert(4, 8, rng=rng)
        names = {n for n, _ in expert.named_parameters()}
        assert names == {"w1.weight", "w2.weight"}

    def test_describe_mentions_architecture(self):
        assert "W3" in nn.SwiGLUExpert.describe()
        assert "gelu" in nn.GeluExpert.describe()

    def test_swiglu_matches_reference(self, rng):
        expert = nn.SwiGLUExpert(4, 8, rng=rng)
        x = rng.standard_normal((3, 4))
        w1, w2, w3 = expert.w1.weight.data, expert.w2.weight.data, expert.w3.weight.data
        gate = x @ w1.T
        silu = gate / (1 + np.exp(-gate))
        expected = (silu * (x @ w3.T)) @ w2.T
        np.testing.assert_allclose(expert(Tensor(x)).data, expected, rtol=1e-9)

    def test_quantized_lora_expert_trains_adapters_only(self, rng):
        expert = nn.SwiGLUExpert(4, 8, quantize=True, lora_rank=2, rng=rng)
        trainable = [n for n, p in expert.named_parameters() if p.requires_grad]
        assert all("lora_" in n for n in trainable) and trainable


class TestRouter:
    def test_top_k_selection_count(self, rng):
        router = nn.TopKRouter(6, 4, 2, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 6))))
        assert decision.expert_indices.shape == (10, 2)

    def test_gates_sum_to_one_on_selected(self, rng):
        router = nn.TopKRouter(6, 4, 2, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 6))))
        np.testing.assert_allclose(decision.gates_full.data.sum(axis=-1), 1.0, rtol=1e-9)

    def test_gates_zero_on_unselected(self, rng):
        router = nn.TopKRouter(6, 4, 2, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 6))))
        selected = np.zeros((10, 4), dtype=bool)
        np.put_along_axis(selected, decision.expert_indices, True, axis=-1)
        assert np.all(decision.gates_full.data[~selected] == 0.0)

    def test_counts_conserve_tokens(self, rng):
        router = nn.TopKRouter(6, 4, 3, rng=rng)
        decision = router(Tensor(rng.standard_normal((10, 6))))
        assert decision.expert_counts.sum() == 10 * 3

    def test_selects_argmax_expert(self, rng):
        router = nn.TopKRouter(4, 4, 1, rng=rng)
        x = Tensor(rng.standard_normal((5, 4)))
        decision = router(x)
        logits = x.data @ router.gate.weight.data.T
        np.testing.assert_array_equal(decision.expert_indices[:, 0], logits.argmax(-1))

    def test_invalid_top_k(self, rng):
        with pytest.raises(ValueError):
            nn.TopKRouter(4, 4, 5, rng=rng)

    def test_gates_differentiable(self, rng):
        router = nn.TopKRouter(6, 4, 2, rng=rng)
        x = Tensor(rng.standard_normal((10, 6)), requires_grad=True)
        decision = router(x)
        decision.gates_full.sum().backward()
        assert router.gate.weight.grad is not None


class TestMoELayer:
    def test_output_shape(self, rng):
        moe = make_moe(rng)
        out = moe(Tensor(rng.standard_normal((2, 5, 6))))
        assert out.shape == (2, 5, 6)

    def test_dense_equals_weighted_sum_of_all_experts(self, rng):
        """With top_k == num_experts the MoE equals softmax-weighted experts."""
        moe = make_moe(rng, top_k=4)
        x = Tensor(rng.standard_normal((1, 3, 6)))
        out = moe(x).data
        flat = x.data.reshape(3, 6)
        logits = flat @ moe.router.gate.weight.data.T
        probs = np.exp(logits - logits.max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        expected = np.zeros_like(flat)
        for e, expert in enumerate(moe.experts):
            expected += probs[:, e : e + 1] * expert(Tensor(flat)).data
        np.testing.assert_allclose(out.reshape(3, 6), expected, rtol=1e-8)

    def test_sparsity_property(self, rng):
        moe = make_moe(rng, experts=8, top_k=2)
        assert moe.sparsity == pytest.approx(0.25)
        moe.set_top_k(8)
        assert moe.sparsity == pytest.approx(1.0)

    def test_set_top_k_validates(self, rng):
        moe = make_moe(rng)
        with pytest.raises(ValueError):
            moe.set_top_k(9)

    def test_expert_counts_tracked(self, rng):
        moe = make_moe(rng)
        moe(Tensor(rng.standard_normal((2, 5, 6))))
        assert moe.last_expert_counts.sum() == 2 * 5 * 2  # tokens * top_k
        assert moe.cumulative_expert_counts.sum() == 20

    def test_reset_load_statistics(self, rng):
        moe = make_moe(rng)
        moe(Tensor(rng.standard_normal((2, 5, 6))))
        moe.reset_load_statistics()
        assert moe.cumulative_expert_counts.sum() == 0

    def test_aux_loss_minimal_when_balanced(self, rng):
        """The Switch aux loss is ~1.0 under perfectly uniform routing."""
        moe = make_moe(rng, experts=4, top_k=4)  # dense: every expert used
        moe.track_aux_loss = True
        moe(Tensor(rng.standard_normal((4, 8, 6))))
        assert moe.aux_loss.item() == pytest.approx(1.0, abs=0.3)

    def test_gradients_reach_used_experts(self, rng):
        moe = make_moe(rng, experts=4, top_k=4)
        x = Tensor(rng.standard_normal((2, 6, 6)), requires_grad=True)
        (moe(x) ** 2).sum().backward()
        for e, expert in enumerate(moe.experts):
            assert expert.w1.weight.grad is not None, f"expert {e} unused in dense mode"

    def test_grad_check_through_routing(self, rng, fd):
        moe = make_moe(rng)
        x = Tensor(rng.standard_normal((1, 4, 6)), requires_grad=True)
        (moe(x) ** 2).sum().backward()
        from repro.tensor import no_grad

        def loss():
            with no_grad():
                return (moe(Tensor(x.data)) ** 2).sum().item()

        index = (0, 2, 3)
        numeric = fd(loss, x.data, index)
        assert x.grad[index] == pytest.approx(numeric, rel=1e-3, abs=1e-5)

    def test_gelu_expert_variant(self, rng):
        moe = make_moe(rng, expert_type="gelu")
        out = moe(Tensor(rng.standard_normal((2, 4, 6))))
        assert out.shape == (2, 4, 6)


@settings(max_examples=25, deadline=None)
@given(
    tokens=st.integers(1, 12),
    experts=st.integers(2, 8),
    data=st.integers(0, 10_000),
)
def test_routing_conservation_property(tokens, experts, data):
    """Every token is assigned to exactly top_k experts and gate mass is 1."""
    rng = np.random.default_rng(data)
    top_k = int(rng.integers(1, experts + 1))
    router = nn.TopKRouter(5, experts, top_k, rng=rng)
    decision = router(Tensor(rng.standard_normal((tokens, 5))))
    # Conservation of assignments.
    assert decision.expert_counts.sum() == tokens * top_k
    # Each token's selected experts are distinct.
    for row in decision.expert_indices:
        assert len(set(row.tolist())) == top_k
    # Gate mass conservation.
    np.testing.assert_allclose(decision.gates_full.data.sum(axis=-1), 1.0, rtol=1e-8)
