"""Tests for SGD, AdamW and LR schedules."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import AdamW, ConstantLR, SGD, WarmupCosineLR


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value]))
    p.grad = np.array([grad])
    return p


class TestSGD:
    def test_basic_step(self):
        p = make_param()
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * 0.5])

    def test_momentum_accumulates(self):
        p = make_param()
        opt = SGD([p], lr=0.1, momentum=0.9)
        opt.step()
        p.grad = np.array([0.5])
        opt.step()
        # v1 = 0.5; v2 = 0.9*0.5 + 0.5 = 0.95; total update = 0.1*(0.5+0.95)
        np.testing.assert_allclose(p.data, [1.0 - 0.1 * (0.5 + 0.95)])

    def test_skips_none_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, momentum=1.5)


class TestAdamW:
    def test_first_step_magnitude_is_lr(self):
        """With bias correction, step 1 moves by ~lr regardless of grad scale."""
        p = make_param(grad=7.3)
        AdamW([p], lr=0.01).step()
        assert abs(1.0 - p.data[0]) == pytest.approx(0.01, rel=1e-4)

    def test_matches_reference_two_steps(self):
        p = make_param(value=1.0, grad=0.5)
        opt = AdamW([p], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        opt.step()
        p.grad = np.array([0.2])
        opt.step()
        # Reference computation.
        m = 0.1 * 0.5
        v = 0.001 * 0.25
        x = 1.0 - 0.1 * (m / 0.1) / (np.sqrt(v / 0.001) + 1e-8)
        m = 0.9 * m + 0.1 * 0.2
        v = 0.999 * v + 0.001 * 0.04
        x -= 0.1 * (m / (1 - 0.9**2)) / (np.sqrt(v / (1 - 0.999**2)) + 1e-8)
        np.testing.assert_allclose(p.data, [x], rtol=1e-9)

    def test_weight_decay_decoupled(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        opt.step()
        # Gradient is zero, so only decay applies: 2 * (1 - 0.1*0.5)
        np.testing.assert_allclose(p.data, [2.0 * 0.95])

    def test_only_trainable_params_collected(self):
        frozen = Parameter(np.ones(3), requires_grad=False)
        live = make_param()
        opt = AdamW([frozen, live], lr=0.1)
        assert opt.num_optimized_parameters() == 1

    def test_no_trainable_raises(self):
        frozen = Parameter(np.ones(3), requires_grad=False)
        with pytest.raises(ValueError):
            AdamW([frozen], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            AdamW([make_param()], lr=0.0)

    def test_state_bytes(self):
        p = Parameter(np.ones(10))
        p.grad = np.ones(10)
        opt = AdamW([p], lr=0.1)
        assert opt.state_bytes() == 2 * 4 * 10

    def test_zero_grad(self):
        p = make_param()
        opt = AdamW([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None


class TestSchedulers:
    def test_constant(self):
        opt = AdamW([make_param()], lr=0.01)
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == pytest.approx(0.01)

    def test_warmup_then_decay(self):
        opt = AdamW([make_param()], lr=1.0)
        sched = WarmupCosineLR(opt, warmup_steps=10, total_steps=110)
        warm = [sched.step() for _ in range(9)]
        assert warm == sorted(warm)  # increasing during warmup
        assert warm[-1] < 1.0
        for _ in range(101):
            last = sched.step()
        assert last == pytest.approx(0.0, abs=1e-6)

    def test_invalid_total_steps(self):
        opt = AdamW([make_param()], lr=1.0)
        with pytest.raises(ValueError):
            WarmupCosineLR(opt, warmup_steps=10, total_steps=5)
