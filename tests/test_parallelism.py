"""Tests for the parallelism-strategy layer: collectives cost model,
strategy classes, sharded workload/memory, planner integration and the
Daly checkpoint optimum."""

import json
import math
from dataclasses import replace
from pathlib import Path

import pytest

from repro.cluster import ClusterPlanner, ClusterScenario, cluster_product
from repro.cluster.plan import main as plan_main
from repro.gpu import (
    A40,
    DATA_PARALLEL,
    DataParallel,
    GPUSimulator,
    Interconnect,
    NVLINK,
    PCIE_GEN4,
    ParallelismStrategy,
    TensorParallel,
    estimate_from_trace,
    get_strategy,
    tp_degrees,
)
from repro.memory.estimator import EFFECTIVE_SEQ_LEN, max_batch_size, memory_breakdown
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from repro.scenarios import Scenario, SimulationCache, preset
from repro.spot import RiskAdjustedPlanner, optimal_interval_minutes
from repro.spot.checkpoint import CheckpointPolicy, checkpoint_state_gb, restart_state_gb

GOLDEN_DIR = Path(__file__).parent / "data"

COLLECTIVES = ("allreduce_seconds", "allgather_seconds", "reducescatter_seconds")


class TestCollectives:
    link = Interconnect("test", bandwidth_gbs=50.0, latency_us=10.0)

    def test_single_gpu_is_free(self):
        """num_gpus <= 1 means no communication at all."""
        for name in COLLECTIVES:
            collective = getattr(self.link, name)
            assert collective(1e9, 1) == 0.0
            assert collective(0.0, 1) == 0.0

    def test_monotone_in_payload(self):
        for name in COLLECTIVES:
            collective = getattr(self.link, name)
            times = [collective(payload, 4) for payload in (1e6, 1e8, 1e9, 1e10)]
            assert times == sorted(times)
            assert times[0] < times[-1]

    def test_monotone_in_gpu_count(self):
        for name in COLLECTIVES:
            collective = getattr(self.link, name)
            times = [collective(1e9, n) for n in (2, 3, 4, 8, 16)]
            assert times == sorted(times)
            assert times[0] < times[-1]

    def test_allreduce_composes_from_halves(self):
        """A ring all-reduce is a reduce-scatter plus an all-gather."""
        for n in (2, 4, 8):
            assert self.link.reducescatter_seconds(1e9, n) + self.link.allgather_seconds(
                1e9, n
            ) == pytest.approx(self.link.allreduce_seconds(1e9, n))

    def test_half_collectives_cost_half_the_wire(self):
        wire_only = Interconnect("w", bandwidth_gbs=50.0, latency_us=0.0)
        for n in (2, 8):
            assert wire_only.allgather_seconds(1e9, n) == pytest.approx(
                wire_only.allreduce_seconds(1e9, n) / 2
            )


class TestStrategyResolution:
    def test_spellings(self):
        assert get_strategy("dp") == DataParallel()
        assert get_strategy("DP") == DataParallel()
        assert get_strategy("tp4") == TensorParallel(degree=4)
        assert get_strategy("tp4-ga2") == TensorParallel(degree=4, grad_accum=2)
        assert get_strategy("dp-ga8") == DataParallel(grad_accum=8)
        # Degree 1 normalizes to data parallelism.
        assert get_strategy("tp1") == DataParallel()
        assert get_strategy("tp1-ga3") == DataParallel(grad_accum=3)

    def test_instances_pass_through(self):
        strategy = TensorParallel(degree=2)
        assert get_strategy(strategy) is strategy

    def test_spec_roundtrip(self):
        for spelling in ("dp", "tp2", "tp8-ga4", "dp-ga2"):
            assert get_strategy(spelling).spec() == spelling
            assert get_strategy(get_strategy(spelling).spec()) == get_strategy(spelling)

    def test_invalid_spellings(self):
        for bad in ("token-ring", "tp0", "tp-2", "ga4-tp2", "tp4-ga0"):
            with pytest.raises(KeyError):
                get_strategy(bad)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DataParallel(grad_accum=0)
        with pytest.raises(ValueError):
            TensorParallel(degree=1)

    def test_fits_and_validate(self):
        tp4 = TensorParallel(degree=4)
        assert tp4.fits(4) and tp4.fits(8)
        assert not tp4.fits(2) and not tp4.fits(6)
        with pytest.raises(ValueError):
            tp4.validate(6)
        assert DataParallel().fits(1)

    def test_tp_degrees_are_powers_of_two(self):
        assert tp_degrees(8) == (2, 4, 8)
        assert tp_degrees(6) == (2, 4)
        assert tp_degrees(1) == ()
        with pytest.raises(ValueError):
            tp_degrees(0)


class TestShardedWorkloadAndMemory:
    def test_per_device_step_shrinks_with_degree(self):
        sim = GPUSimulator(A40)
        times = [
            sim.simulate_step(MIXTRAL_8X7B, 4, 128, tensor_parallel=t).total_seconds
            for t in (1, 2, 4, 8)
        ]
        assert times == sorted(times, reverse=True)
        assert times[-1] < times[0]

    def test_degree_one_is_the_plain_workload(self):
        sim = GPUSimulator(A40)
        assert (
            sim.simulate_step(MIXTRAL_8X7B, 2, 128, tensor_parallel=1).total_seconds
            == sim.simulate_step(MIXTRAL_8X7B, 2, 128).total_seconds
        )

    def test_sharded_memory_divides_state_not_framework(self):
        full = memory_breakdown(MIXTRAL_8X7B, 185, False)
        shard = memory_breakdown(MIXTRAL_8X7B, 185, False, tensor_parallel=4)
        assert shard.weights_gb == pytest.approx(full.weights_gb / 4)
        assert shard.adapter_gb == pytest.approx(full.adapter_gb / 4)
        assert shard.optimizer_gb == pytest.approx(full.optimizer_gb / 4)
        assert shard.framework_gb == full.framework_gb
        assert shard.activation_gb_per_query < full.activation_gb_per_query

    def test_max_batch_size_grows_with_degree(self):
        sizes = [
            max_batch_size(MIXTRAL_8X7B, A40, 185, True, tensor_parallel=t)
            for t in (1, 2, 4, 8)
        ]
        assert sizes == sorted(sizes)

    def test_tp_fits_what_dp_cannot(self):
        """The headline cell: dense Mixtral at the HellaSwag padded
        length fits no single A40 but fits a TP-2 shard."""
        seq = EFFECTIVE_SEQ_LEN["hellaswag"]
        assert max_batch_size(MIXTRAL_8X7B, A40, seq, True) == 0
        assert max_batch_size(MIXTRAL_8X7B, A40, seq, True, tensor_parallel=2) >= 1


class TestStrategyEstimates:
    def _trace(self, cfg=MIXTRAL_8X7B, batch=4, tensor_parallel=1):
        return GPUSimulator(A40).simulate_step(
            cfg, batch, 128, tensor_parallel=tensor_parallel
        )

    def test_default_dp_is_bit_identical_to_legacy(self):
        trace = self._trace()
        legacy = estimate_from_trace(MIXTRAL_8X7B, trace, 8, NVLINK)
        via_strategy = estimate_from_trace(
            MIXTRAL_8X7B, trace, 8, NVLINK, strategy=DATA_PARALLEL
        )
        assert via_strategy == legacy
        assert DataParallel().estimate(MIXTRAL_8X7B, trace, 8, NVLINK) == legacy

    def test_grad_accum_amortizes_sync_and_optimizer(self):
        trace = self._trace(BLACKMAMBA_2_8B, batch=6)
        base = estimate_from_trace(BLACKMAMBA_2_8B, trace, 8, PCIE_GEN4)
        accum = estimate_from_trace(
            BLACKMAMBA_2_8B, trace, 8, PCIE_GEN4, strategy=DataParallel(grad_accum=8)
        )
        # Full-model gradients over PCIe are expensive; syncing once per
        # 8 micro-batches beats syncing every micro-batch.
        assert accum.queries_per_second > base.queries_per_second
        assert accum.grad_accum == 8
        assert accum.allreduce_seconds == base.allreduce_seconds

    def test_tensor_parallel_estimate_shape(self):
        strategy = TensorParallel(degree=4)
        trace = self._trace(tensor_parallel=4)
        estimate = strategy.estimate(MIXTRAL_8X7B, trace, 8, NVLINK)
        assert estimate.tensor_parallel == 4
        assert estimate.data_parallel == 2
        assert estimate.tp_comm_seconds > 0
        assert 0 < estimate.scaling_efficiency <= 1.0
        assert estimate.queries_per_second > 0
        with pytest.raises(ValueError):
            strategy.estimate(MIXTRAL_8X7B, trace, 6, NVLINK)

    def test_tp_comm_cheaper_on_faster_links(self):
        strategy = TensorParallel(degree=4)
        trace = self._trace(tensor_parallel=4)
        fast = strategy.estimate(MIXTRAL_8X7B, trace, 4, NVLINK)
        slow = strategy.estimate(MIXTRAL_8X7B, trace, 4, PCIE_GEN4)
        assert fast.tp_comm_seconds < slow.tp_comm_seconds
        assert fast.queries_per_second > slow.queries_per_second

    def test_global_batch_size(self):
        assert DataParallel().global_batch_size(8, 4) == 32
        assert DataParallel(grad_accum=4).global_batch_size(8, 4) == 128
        assert TensorParallel(degree=4).global_batch_size(8, 4) == 8
        assert TensorParallel(degree=4, grad_accum=2).global_batch_size(8, 4) == 16


class TestScenarioStrategyAxis:
    def scenario(self, n=8, strategy="dp", **kw):
        defaults = dict(model=MIXTRAL_8X7B, gpu="A40", batch_size=4, seq_len=128)
        defaults.update(kw)
        return ClusterScenario(num_gpus=n, strategy=strategy, **defaults)

    def test_dp_key_unchanged_from_plain_scenario(self):
        plain = Scenario(model=MIXTRAL_8X7B, gpu="A40", batch_size=4, seq_len=128)
        assert self.scenario().key() == plain.key()
        assert self.scenario().digest() == plain.digest()

    def test_grad_accum_shares_the_replica_trace(self):
        cache = SimulationCache()
        for accum in (1, 2, 8):
            cache.simulate(self.scenario(strategy=DataParallel(grad_accum=accum)))
        assert cache.stats().misses == 1

    def test_tp_degree_keys_its_own_trace(self):
        keys = {self.scenario(strategy=s).key() for s in ("dp", "tp2", "tp4", "tp8")}
        assert len(keys) == 4
        digests = {self.scenario(strategy=s).digest() for s in ("dp", "tp2", "tp8")}
        assert len(digests) == 3
        assert "tensor_parallel" in self.scenario(strategy="tp4").canonical_text()

    def test_tp_cluster_sizes_share_one_sharded_trace(self):
        cache = SimulationCache()
        for n in (2, 4, 8):
            cache.simulate(self.scenario(n=n, strategy="tp2"))
        assert cache.stats().misses == 1

    def test_strategy_normalized_and_validated(self):
        assert self.scenario(strategy="tp4").strategy_spec == TensorParallel(degree=4)
        with pytest.raises(ValueError):
            self.scenario(n=6, strategy="tp4")
        with pytest.raises(KeyError):
            self.scenario(strategy="token-ring")

    def test_conflicting_explicit_override_raises(self):
        """The override is strategy-owned: a conflict errors instead of
        silently handing back unsharded numbers."""
        with pytest.raises(ValueError, match="strategy-owned"):
            self.scenario(strategy="dp", overrides={"tensor_parallel": 4})
        with pytest.raises(ValueError, match="strategy-owned"):
            self.scenario(strategy="tp2", overrides={"tensor_parallel": 4})
        # A matching override (a dataclasses.replace copy carrying the
        # injected entry) normalizes instead of raising.
        assert self.scenario(
            strategy="tp4", overrides={"tensor_parallel": 4}
        ) == self.scenario(strategy="tp4")

    def test_with_strategy_reconciles_the_override(self):
        tp = self.scenario(strategy="tp4")
        assert dict(tp.overrides)["tensor_parallel"] == 4
        back = tp.with_(strategy="dp")
        assert "tensor_parallel" not in dict(back.overrides)
        assert back.key() == self.scenario().key()
        retargeted = tp.with_(strategy="tp2")
        assert dict(retargeted.overrides)["tensor_parallel"] == 2

    def test_labels(self):
        assert self.scenario().label(include_gpu=True) == "mixtral_S4_A40_x8_NVLink"
        assert (
            self.scenario(strategy="tp4").label(include_gpu=True)
            == "mixtral_S4_A40_x8_tp4_NVLink"
        )
        assert "tp4-ga2" in self.scenario(strategy="tp4-ga2").qualified_label()

    def test_estimate_uses_the_strategy(self):
        cache = SimulationCache()
        estimate = self.scenario(strategy="tp4").estimate(cache)
        assert estimate.tensor_parallel == 4
        assert estimate.data_parallel == 2

    def test_cluster_product_strategy_axis_skips_impossible_sizes(self):
        grid = cluster_product(
            models=(MIXTRAL_8X7B,), gpus=("A40",), batch_sizes=(1,),
            seq_lens=(128,), num_gpus=(1, 2, 4), strategies=("dp", "tp4"),
        )
        combos = [(s.strategy_spec.spec(), s.num_gpus) for s in grid]
        assert combos == [("dp", 1), ("dp", 2), ("dp", 4), ("tp4", 4)]

    def test_tensor_parallel_scaling_preset(self):
        grid = preset("tensor-parallel-scaling")
        assert len(grid) > 0
        assert all(s.tensor_parallel >= 2 for s in grid)
        assert all(s.strategy_spec.fits(s.num_gpus) for s in grid)
        # One sharded trace per TP degree serves the whole preset.
        assert len({s.key() for s in grid}) == len({s.tensor_parallel for s in grid})


class TestPlannerParallelism:
    def test_dp_plan_byte_identical_to_pre_refactor_golden(self, capsys):
        """The hard acceptance: with (and without) --parallelism dp the
        plan JSON matches the output captured before the strategy layer
        existed, byte for byte."""
        cases = [
            (["--model", "mixtral", "--gpu", "a40", "--deadline-hours", "24",
              "--json"], "golden_cluster_plan_mixtral_a40.json"),
            (["--model", "mixtral", "--density", "dense", "--gpu", "a40",
              "--json"], "golden_cluster_plan_mixtral_a40_dense.json"),
        ]
        for argv, golden in cases:
            golden_text = (GOLDEN_DIR / golden).read_text()
            assert plan_main(argv) == 0
            assert capsys.readouterr().out == golden_text
            assert plan_main(argv + ["--parallelism", "dp"]) == 0
            assert capsys.readouterr().out == golden_text

    def test_auto_prices_the_cell_dp_skips(self):
        """Acceptance: the dense-Mixtral-on-A40 HellaSwag cell is skipped
        under pure DP and priced at TP degrees under auto."""
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="hellaswag", cache=cache)
        kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(True,))
        dp = planner.plan(parallelism="dp", **kwargs)
        assert not dp.candidates
        assert dp.skipped == [
            "mixtral-8x7b (dense) does not fit on A40 at seq_len=280"
        ]
        auto = planner.plan(parallelism="auto", **kwargs)
        assert auto.candidates
        assert not auto.skipped
        assert all(c.scenario.tensor_parallel >= 2 for c in auto.candidates)
        payload = auto.to_payload()
        assert payload["cheapest"]["tensor_parallel"] >= 2
        assert payload["cheapest"]["parallelism"].startswith("tp")

    def test_auto_acceptance_command_prices_tp_candidates(self, capsys):
        argv = ["--model", "mixtral", "--density", "dense", "--gpu", "a40",
                "--parallelism", "auto", "--json"]
        assert plan_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        tp_entries = [
            c for c in payload["frontier"]
            if c.get("tensor_parallel", 1) > 1 and c["num_gpus"] > 1
        ]
        assert tp_entries  # multi-GPU tensor-parallel candidates priced

    def test_skip_reason_when_no_tp_degree_fits(self):
        """Cells no enumerated degree can fit stay skipped, with a reason
        naming the TP search."""
        tiny = replace(A40, name="A40", memory_gb=12.0)
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k",
                                 cache=SimulationCache())
        plan = planner.plan(gpus=(tiny,), providers=("cudo",),
                            densities=(True,), parallelism="auto")
        assert not plan.candidates
        assert plan.skipped == [
            "mixtral-8x7b (dense) does not fit on A40 at seq_len=185 "
            "at any tensor-parallel degree <= 8"
        ]

    def test_skip_reason_when_no_size_hosts_a_fitting_degree(self):
        """Memory fits at TP degrees but the requested cluster sizes
        cannot host any of them — the reason points at the size axis,
        not the batch axis."""
        planner = ClusterPlanner("mixtral-8x7b", dataset="hellaswag",
                                 cache=SimulationCache())
        plan = planner.plan(gpus=(A40,), providers=("cudo",),
                            densities=(True,), parallelism="auto",
                            num_gpus=(1,))
        assert not plan.candidates
        assert len(plan.skipped) == 1
        assert "no requested cluster size" in plan.skipped[0]
        assert "batch size" not in plan.skipped[0]

    def test_warm_strategy_sweep_adds_zero_simulations(self):
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="hellaswag", cache=cache)
        kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(True,),
                      parallelism="auto")
        cold = planner.plan(**kwargs)
        simulations = cache.stats().simulations
        warm = planner.plan(**kwargs)
        assert cache.stats().simulations == simulations
        assert warm.to_payload() == cold.to_payload()

    def test_grad_accum_axis_shares_traces(self):
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
        kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(False,))
        planner.plan(grad_accums=(1,), **kwargs)
        misses = cache.stats().misses
        plan = planner.plan(grad_accums=(1, 4), **kwargs)
        assert cache.stats().misses == misses  # the depth axis is free
        accums = {c.scenario.grad_accum for c in plan.candidates}
        assert accums == {1, 4}
        labeled = [c for c in plan.candidates if c.scenario.grad_accum == 4]
        assert all("ga4" in c.label for c in labeled)

    def test_parallelism_validation(self):
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k",
                                 cache=SimulationCache())
        with pytest.raises(ValueError):
            planner.plan(parallelism="pipeline")
        with pytest.raises(ValueError):
            planner.plan(parallelism="tp", max_tp=1)
        with pytest.raises(ValueError):
            planner.plan(grad_accums=())

    def test_cli_flag_errors(self, capsys):
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--parallelism", "tp", "--max-tp", "1"])
        assert "--max-tp" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--grad-accum", "0"])
        assert "gradient-accumulation" in capsys.readouterr().err


class TestDalyCadence:
    def test_closed_form(self):
        # sqrt(2 * 8 h * 1 h of writing) = 4 h = 240 min.
        assert optimal_interval_minutes(8.0, 3600.0) == pytest.approx(240.0)
        # Quadrupling MTBP doubles the cadence.
        assert optimal_interval_minutes(32.0, 3600.0) == pytest.approx(480.0)

    def test_edges(self):
        assert math.isinf(optimal_interval_minutes(float("inf"), 10.0))
        assert optimal_interval_minutes(8.0, 0.0) == 0.0
        with pytest.raises(ValueError):
            optimal_interval_minutes(0.0, 10.0)
        with pytest.raises(ValueError):
            optimal_interval_minutes(8.0, -1.0)

    def _plan(self, **planner_kw):
        planner = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="math14k", cache=SimulationCache(), **planner_kw
        )
        return planner.plan_spot(gpus=(A40,), providers=("cudo",),
                                 densities=(False,))

    def test_default_cadence_is_daly_per_candidate(self):
        plan = self._plan(mtbp_hours=8.0)
        spot = plan.spot_candidates
        assert spot
        write_seconds = checkpoint_state_gb(MIXTRAL_8X7B) / 1.0
        for c in spot:
            fleet_mtbp = 8.0 / c.scenario.num_gpus
            assert c.policy.interval_minutes == pytest.approx(
                optimal_interval_minutes(fleet_mtbp, write_seconds)
            )
        # Larger fleets preempt more often -> shorter optimal cadence.
        by_size = {c.scenario.num_gpus: c.policy.interval_minutes for c in spot}
        sizes = sorted(by_size)
        assert [by_size[n] for n in sizes] == sorted(
            (by_size[n] for n in sizes), reverse=True
        )

    def test_menu_still_overrides(self):
        plan = self._plan(checkpoint_minutes=(30.0,))
        assert plan.spot_candidates
        assert all(
            c.policy.interval_minutes == 30.0 for c in plan.spot_candidates
        )

    def test_daly_beats_the_old_menu_default(self):
        """The closed form is at least as good as the fixed 30-minute
        default on every candidate (that is what 'optimal' buys)."""
        daly = {c.base.label: c for c in self._plan().spot_candidates}
        menu = self._plan(checkpoint_minutes=(30.0,)).spot_candidates
        for c in menu:
            assert daly[c.base.label].expected_hours <= c.expected_hours + 1e-12


class TestShardedCheckpoint:
    def test_state_divides_with_degree(self):
        full = checkpoint_state_gb(MIXTRAL_8X7B)
        assert checkpoint_state_gb(MIXTRAL_8X7B, 4) == pytest.approx(full / 4)
        assert restart_state_gb(MIXTRAL_8X7B, 4) < restart_state_gb(MIXTRAL_8X7B)

    def test_policy_for_model_uses_the_shard(self):
        full = CheckpointPolicy.for_model(MIXTRAL_8X7B)
        shard = CheckpointPolicy.for_model(MIXTRAL_8X7B, tensor_parallel=4)
        assert shard.write_seconds == pytest.approx(full.write_seconds / 4)
        assert shard.restart_seconds < full.restart_seconds

    def test_risk_planner_derives_sharded_write_costs(self):
        """Satellite: under TP the spot tier's checkpoint costs come from
        the per-device sharded state, not the full model."""
        planner = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="hellaswag", cache=SimulationCache(),
            checkpoint_minutes=(30.0,),
        )
        plan = planner.plan_spot(gpus=(A40,), providers=("cudo",),
                                 densities=(True,), parallelism="auto")
        spot = plan.spot_candidates
        assert spot
        full_write = CheckpointPolicy.for_model(MIXTRAL_8X7B).write_seconds
        for c in spot:
            degree = c.scenario.tensor_parallel
            assert degree >= 2
            assert c.policy.write_seconds == pytest.approx(full_write / degree)
