"""Tests for the Nsight-style report rendering."""

import pytest

from repro.gpu import A40, GPUSimulator
from repro.models import MIXTRAL_8X7B
from repro.profiling import ProfileReport, compare_traces


@pytest.fixture(scope="module")
def trace():
    return GPUSimulator(A40).simulate_step(MIXTRAL_8X7B, 4, 128, dense=False, label="unit")


class TestProfileReport:
    def test_stage_table_contains_all_stages(self, trace):
        table = ProfileReport(trace).stage_table()
        for stage in ("forward", "backward", "optimizer"):
            assert stage in table

    def test_layer_table_sorted_by_time(self, trace):
        table = ProfileReport(trace).layer_table()
        lines = [l for l in table.splitlines()[1:] if l.strip()]
        assert "moe" in lines[0]  # biggest layer first

    def test_kernel_table_has_fig6_names(self, trace):
        table = ProfileReport(trace).kernel_table("moe")
        for name in ("matmul(w1)", "w1_dequant", "topk", "time_weighted"):
            assert name in table

    def test_full_report_combines_sections(self, trace):
        report = ProfileReport(trace).full_report()
        assert "Stage breakdown" in report
        assert "Layer breakdown" in report
        assert "Kernel breakdown" in report

    def test_shares_sum_to_100(self, trace):
        table = ProfileReport(trace).stage_table()
        shares = [float(part.split("%")[0].split()[-1]) for part in table.splitlines()[1:]]
        assert sum(shares) == pytest.approx(100.0, abs=0.3)


class TestCompareTraces:
    def test_lists_each_label(self):
        sim = GPUSimulator(A40)
        traces = [
            sim.simulate_step(MIXTRAL_8X7B, b, 128, dense=False, label=f"bsz={b}")
            for b in (1, 4)
        ]
        text = compare_traces(traces)
        assert "bsz=1" in text and "bsz=4" in text

    def test_callable_metric(self):
        sim = GPUSimulator(A40)
        traces = [sim.simulate_step(MIXTRAL_8X7B, 1, 128, label="x")]
        text = compare_traces(traces, metric="moe_fraction")
        assert "x" in text
