"""Tests for the NF4 blockwise quantizer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.quant import (
    DEFAULT_BLOCK_SIZE,
    NF4_CODEBOOK,
    QuantizedTensor,
    quantization_error,
    quantize,
)


class TestCodebook:
    def test_sixteen_levels(self):
        assert NF4_CODEBOOK.shape == (16,)

    def test_sorted_and_symmetric_endpoints(self):
        assert np.all(np.diff(NF4_CODEBOOK) > 0)
        assert NF4_CODEBOOK[0] == -1.0
        assert NF4_CODEBOOK[-1] == 1.0

    def test_zero_is_representable(self):
        assert 0.0 in NF4_CODEBOOK


class TestQuantizeDequantize:
    def test_roundtrip_shape_preserved(self, rng):
        w = rng.standard_normal((7, 13))
        qt = quantize(w)
        assert qt.dequantize().shape == (7, 13)

    def test_codebook_values_are_exact_fixed_points(self):
        """Values exactly on scaled codebook levels reconstruct exactly."""
        scale = 3.7
        w = NF4_CODEBOOK * scale  # one block of 16, absmax = scale
        qt = quantize(w, block_size=16)
        np.testing.assert_allclose(qt.dequantize(), w, rtol=1e-6)

    def test_gaussian_relative_error_small(self, rng):
        w = rng.standard_normal(4096)
        assert quantization_error(w) < 0.12  # NF4 on gaussian data: ~8% RMS

    def test_error_worse_than_zero_for_nonzero_input(self, rng):
        assert quantization_error(rng.standard_normal(256)) > 0.0

    def test_zero_input_exact(self):
        qt = quantize(np.zeros(128))
        np.testing.assert_allclose(qt.dequantize(), 0.0)
        assert quantization_error(np.zeros(128)) == 0.0

    def test_non_multiple_block_size_padding(self, rng):
        w = rng.standard_normal(100)  # not a multiple of 64
        qt = quantize(w)
        assert qt.dequantize().shape == (100,)

    def test_packing_is_half_byte_per_element(self, rng):
        w = rng.standard_normal(1024)
        qt = quantize(w)
        assert qt.packed.nbytes == 512  # 2 codes per byte

    def test_nominal_bytes_includes_scales(self, rng):
        qt = quantize(rng.standard_normal(128), block_size=64)
        assert qt.nominal_bytes == 64 + 2 * 4  # packed + 2 fp32 scales

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4), block_size=0)

    def test_blockwise_scales_isolate_outliers(self):
        """An outlier in one block must not destroy precision elsewhere."""
        w = np.concatenate([np.full(64, 0.01), np.full(64, 100.0)])
        qt = quantize(w, block_size=64)
        out = qt.dequantize()
        np.testing.assert_allclose(out[:64], 0.01, rtol=1e-6)
        np.testing.assert_allclose(out[64:], 100.0, rtol=1e-6)

    def test_scale_dtype_fp32(self, rng):
        assert quantize(rng.standard_normal(64)).scales.dtype == np.float32


@settings(max_examples=40, deadline=None)
@given(
    arrays(np.float64, st.integers(1, 300),
           elements=st.floats(min_value=-100, max_value=100, allow_nan=False)),
)
def test_roundtrip_error_bounded_by_block_absmax(w):
    """|x - dequant(quant(x))| <= absmax * max codebook gap / 2, per block."""
    qt = quantize(w, block_size=64)
    out = qt.dequantize()
    max_gap = np.max(np.diff(NF4_CODEBOOK))
    padded = np.zeros(((len(w) + 63) // 64) * 64)
    padded[: len(w)] = w
    blocks = padded.reshape(-1, 64)
    absmax = np.maximum(np.abs(blocks).max(axis=1), 1e-12)
    bound = np.repeat(absmax * max_gap / 2, 64)[: len(w)]
    assert np.all(np.abs(out - w) <= bound + 1e-9)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 200), st.integers(1, 4))
def test_dequantize_idempotent_fixed_point(n, seed):
    """quant(dequant(quant(x))) == quant(x) — codes are a fixed point."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(n)
    qt1 = quantize(w)
    qt2 = quantize(qt1.dequantize())
    np.testing.assert_allclose(qt1.dequantize(), qt2.dequantize(), rtol=1e-9, atol=1e-12)
