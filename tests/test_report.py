"""Tests for the experiment report runner."""

from repro.experiments.report import TRAINING_EXPERIMENTS, run_report


class TestReportRunner:
    def test_fast_report_covers_all_artifacts(self):
        text = run_report(include_training=False)
        for key in ("table1", "table3", "fig8", "fig13", "fig14", "table4", "seqlen"):
            assert f"== {key}" in text

    def test_training_experiments_skipped_by_default(self):
        text = run_report(include_training=False)
        for key in TRAINING_EXPERIMENTS:
            assert f"== {key}: skipped" in text

    def test_match_summaries_present(self):
        text = run_report(include_training=False)
        assert "paper-comparable rows within 50%" in text
