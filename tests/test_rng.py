"""The seeded-default RNG helper: reproducible-by-default module init."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.rng import DEFAULT_SEED, resolve_rng
from repro.tensor import core as tensor_core


class TestResolveRng:
    def test_explicit_generator_passes_through(self):
        rng = np.random.default_rng(7)
        assert resolve_rng(rng) is rng

    def test_default_is_deterministic_across_calls(self):
        a = resolve_rng(None).standard_normal(8)
        b = resolve_rng(None).standard_normal(8)
        np.testing.assert_array_equal(a, b)

    def test_default_matches_the_documented_seed(self):
        expected = np.random.default_rng(DEFAULT_SEED).standard_normal(4)
        np.testing.assert_array_equal(resolve_rng().standard_normal(4), expected)


class TestReproducibleModuleInit:
    def test_default_linear_weights_are_identical(self):
        a = nn.Linear(4, 4)
        b = nn.Linear(4, 4)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_default_embedding_weights_are_identical(self):
        a = nn.Embedding(16, 8)
        b = nn.Embedding(16, 8)
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_default_attention_stack_is_identical(self):
        a = nn.CausalSelfAttention(8, 2)
        b = nn.CausalSelfAttention(8, 2)
        for (name_a, param_a), (name_b, param_b) in zip(
            a.named_parameters(), b.named_parameters()
        ):
            assert name_a == name_b
            np.testing.assert_array_equal(param_a.data, param_b.data)

    def test_explicit_rng_still_decorrelates(self):
        a = nn.Linear(4, 4, rng=np.random.default_rng(1))
        b = nn.Linear(4, 4, rng=np.random.default_rng(2))
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_default_randn_is_deterministic(self):
        x = tensor_core.randn((3, 3))
        y = tensor_core.randn((3, 3))
        np.testing.assert_array_equal(x.data, y.data)
