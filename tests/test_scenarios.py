"""Tests for the scenario engine: scenario identity, grid building,
cache accounting, parallel determinism, and regression equivalence of the
refactored experiments against the seed (direct-simulator) path."""

import pytest

from repro.experiments import fig8_throughput, report, table3_maxbatch
from repro.gpu import A40, A100_80, GPUSimulator
from repro.memory import max_batch_size
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from repro.scenarios import (
    Scenario,
    ScenarioGrid,
    SimulationCache,
    SweepRunner,
    default_cache,
    freeze_overrides,
    preset,
    preset_names,
    register_preset,
)


class TestScenario:
    def test_hashing_and_equality(self):
        a = Scenario(model=MIXTRAL_8X7B, gpu=A40, batch_size=2, seq_len=128, dense=False)
        b = Scenario(model=MIXTRAL_8X7B, gpu=A40, batch_size=2, seq_len=128, dense=False)
        c = Scenario(model=MIXTRAL_8X7B, gpu=A40, batch_size=3, seq_len=128, dense=False)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_registry_keys_resolve_to_same_cache_key(self):
        by_key = Scenario(model="mixtral-8x7b", gpu="A40", batch_size=1, seq_len=128)
        by_obj = Scenario(model=MIXTRAL_8X7B, gpu=A40, batch_size=1, seq_len=128)
        assert by_key.key() == by_obj.key()
        assert by_key.config is MIXTRAL_8X7B
        assert by_key.gpu_spec is A40

    def test_dataset_resolves_median_seq_len(self):
        s = Scenario(model=MIXTRAL_8X7B, gpu=A40, dataset="commonsense15k")
        assert s.resolved_seq_len == 79
        assert Scenario(model=MIXTRAL_8X7B, gpu=A40, dataset="math14k").resolved_seq_len == 174

    def test_explicit_seq_len_wins_over_dataset(self):
        s = Scenario(model=MIXTRAL_8X7B, gpu=A40, dataset="commonsense15k", seq_len=80)
        assert s.resolved_seq_len == 80

    def test_requires_seq_len_or_dataset(self):
        with pytest.raises(ValueError):
            Scenario(model=MIXTRAL_8X7B, gpu=A40)
        with pytest.raises(ValueError):
            Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=128, batch_size=0)

    def test_label_convention(self):
        s = Scenario(model=MIXTRAL_8X7B, gpu=A40, dataset="commonsense15k",
                     batch_size=2, dense=False)
        assert s.label() == "mixtral_commonsense15k_S2"
        assert s.with_(dense=True).label() == "mixtral_commonsense15k_D2"
        assert Scenario(model=BLACKMAMBA_2_8B, gpu=A40, seq_len=128).label() == "blackmamba_S1"

    def test_overrides_normalize_from_dict(self):
        from_dict = Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=64,
                             overrides={"quantized": False})
        from_items = Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=64,
                              overrides=(("quantized", False),))
        assert from_dict == from_items
        assert from_dict.overrides_dict() == {"quantized": False}
        assert freeze_overrides({"b": 1, "a": 2}) == (("a", 2), ("b", 1))

    def test_unsorted_tuple_overrides_normalize(self):
        unsorted = Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=64,
                            overrides=(("b", 1), ("a", 2)))
        as_dict = Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=64,
                           overrides={"a": 2, "b": 1})
        assert unsorted == as_dict
        assert hash(unsorted) == hash(as_dict)
        assert unsorted.key() == as_dict.key()

    def test_max_batch_size_matches_oracle(self):
        s = Scenario(model=MIXTRAL_8X7B, gpu=A40, seq_len=80, dense=False)
        assert s.max_batch_size() == max_batch_size(MIXTRAL_8X7B, A40, 80, False)


class TestScenarioGrid:
    def test_product_order_is_deterministic(self):
        grid = ScenarioGrid.product(
            models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
            gpus=(A40,),
            seq_lens=(128,),
            dense=(True, False),
            batch_sizes=(1, 2),
        )
        assert len(grid) == 8
        assert grid.labels()[:4] == ["mixtral_D1", "mixtral_D2", "mixtral_S1", "mixtral_S2"]
        assert grid == ScenarioGrid.product(
            models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B), gpus=(A40,), seq_lens=(128,),
            dense=(True, False), batch_sizes=(1, 2),
        )

    def test_filter_and_concat(self):
        grid = ScenarioGrid.product(models=(MIXTRAL_8X7B,), gpus=(A40,),
                                    seq_lens=(128,), batch_sizes=(1, 2, 3, 4))
        evens = grid.filter(lambda s: s.batch_size % 2 == 0)
        assert [s.batch_size for s in evens] == [2, 4]
        assert len(evens + grid) == 6

    def test_batch_sweep_spans_oracle_range(self):
        upper = max_batch_size(MIXTRAL_8X7B, A40, 80, False)
        grid = ScenarioGrid.batch_sweep(MIXTRAL_8X7B, A40, seq_len=80, dense=False)
        assert [s.batch_size for s in grid] == list(range(1, upper + 1))

    def test_batch_sweep_floors_at_one(self):
        # Dense Mixtral at a long length does not fit; the sweep still
        # contributes its batch-1 point, as the fitting procedure expects.
        grid = ScenarioGrid.batch_sweep(MIXTRAL_8X7B, A40, seq_len=4096, dense=True)
        assert [s.batch_size for s in grid] == [1]

    def test_presets(self):
        assert {"fig8", "table3", "a40-profiling-grid"} <= set(preset_names())
        assert len(preset("fig8")) == 18
        assert preset("table3").labels()[0] == "mixtral_commonsense15k_D1"
        with pytest.raises(KeyError):
            preset("nope")
        with pytest.raises(ValueError):
            register_preset("fig8", lambda: ScenarioGrid())

    def test_profiling_grid_preset_covers_fig4_points(self):
        from repro.experiments.fig4_stages import BLACKMAMBA_POINTS, MIXTRAL_POINTS

        grid = preset("profiling-grid")
        assert len(grid) == len(MIXTRAL_POINTS) + len(BLACKMAMBA_POINTS)
        by_family = {}
        for s in grid:
            by_family.setdefault(s.config.family, set()).add((s.dense, s.batch_size))
            assert s.resolved_seq_len == 128 and s.gpu_spec is A40
        assert by_family["mixtral"] == set(MIXTRAL_POINTS)
        assert by_family["blackmamba"] == set(BLACKMAMBA_POINTS)

    def test_table4_cost_preset_is_the_calibration_sweep(self):
        from repro.memory import EFFECTIVE_SEQ_LEN

        grid = preset("table4-cost")
        assert {s.gpu_spec.name for s in grid} == {"A40", "A100-80GB", "H100-80GB"}
        assert {s.dense for s in grid} == {True, False}
        assert all(s.resolved_seq_len == EFFECTIVE_SEQ_LEN["gsm8k"] for s in grid)
        # Each (gpu, density) cell sweeps 1..max consecutively.
        for gpu in ("A40",):
            sparse = [s.batch_size for s in grid
                      if s.gpu_spec.name == gpu and not s.dense]
            assert sparse == list(range(1, len(sparse) + 1))

    def test_fig13_projection_preset_shape(self):
        grid = preset("fig13-projection")
        assert len(grid) == 2 * 4 * 4 * 2  # models x gpus x seq_lens x densities
        assert all(s.batch_size == 1 for s in grid)

    def test_cluster_scaling_preset_resolves_lazily(self):
        # Registered by repro.cluster at import time; preset() pulls the
        # package in on first miss.
        assert len(preset("cluster-scaling")) == 16

    def test_preset_import_failure_does_not_mask_other_subsystems(self, monkeypatch):
        """Regression: the lazy import loop used to abort on the first
        failing subsystem, making every *other* subsystem's presets
        unreachable too. Each subsystem now imports independently, and
        the original failure only surfaces if the preset stays missing."""
        import importlib

        from repro.scenarios import grid as grid_mod

        registered = {}
        monkeypatch.setattr(grid_mod, "_PRESETS", registered)

        def fake_import(name, *args, **kwargs):
            if name == "repro.experiments":
                raise ImportError("experiments subsystem is broken")
            if name == "repro.cluster":
                registered["cluster-sentinel"] = lambda: ScenarioGrid()
            return None

        monkeypatch.setattr(importlib, "import_module", fake_import)
        # The cluster presets resolve despite the experiments failure...
        assert len(grid_mod.preset("cluster-sentinel")) == 0
        # ...and a genuinely missing preset raises KeyError carrying the
        # import failure as context, not the ImportError itself.
        with pytest.raises(KeyError) as excinfo:
            grid_mod.preset("definitely-missing")
        assert "experiments subsystem is broken" in str(excinfo.value)


class TestSimulationCache:
    def test_resolve_cache(self):
        from repro.scenarios import resolve_cache

        explicit = SimulationCache()
        assert resolve_cache(explicit) is explicit
        assert resolve_cache(None) is default_cache()

    def test_hit_miss_accounting(self):
        cache = SimulationCache()
        s = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=1, seq_len=64)
        first = cache.simulate(s)
        assert (cache.stats().hits, cache.stats().misses) == (0, 1)
        second = cache.simulate(s)
        assert second is first
        assert (cache.stats().hits, cache.stats().misses) == (1, 1)
        cache.simulate(s.with_(batch_size=2))
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 2, 2)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_equivalent_scenarios_share_one_trace(self):
        cache = SimulationCache()
        with_dataset = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, dataset="commonsense15k")
        with_seq_len = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, seq_len=79)
        assert cache.simulate(with_dataset) is cache.simulate(with_seq_len)
        assert cache.stats().misses == 1

    def test_trace_matches_direct_simulator(self):
        cache = SimulationCache()
        cached = cache.trace(BLACKMAMBA_2_8B, A40, 2, 64, dense=True)
        direct = GPUSimulator(A40).simulate_step(BLACKMAMBA_2_8B, 2, 64, dense=True)
        assert cached.total_seconds == direct.total_seconds
        assert cached.queries_per_second == direct.queries_per_second

    def test_memoize_counts_in_the_stats(self):
        """Regression: derived-result traffic used to bypass the hit/miss
        counters entirely, so Eq. 2 fits looked free in benchmarks."""
        cache = SimulationCache()
        assert cache.memoize(("fit", 1), lambda: "a") == "a"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 1)
        assert cache.memoize(("fit", 1), lambda: "recomputed") == "a"
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        # ...but a derived miss is not a simulation.
        assert stats.simulations == 0

    def test_memoize_kind_risk_uses_dedicated_counters(self):
        """kind="risk" books into risk_hits/risk_misses so the spot
        planner's memoized risk results stay distinguishable from trace
        and fit traffic (which several tests pin exactly)."""
        cache = SimulationCache()
        assert cache.memoize(("risk", 1), lambda: "r", kind="risk") == "r"
        assert cache.memoize(("risk", 1), lambda: "no", kind="risk") == "r"
        stats = cache.stats()
        assert (stats.risk_hits, stats.risk_misses) == (1, 1)
        assert (stats.hits, stats.misses) == (0, 0)
        # The namespace is shared; only the accounting differs.
        assert cache.memoize(("risk", 1), lambda: "no") == "r"
        assert cache.stats().hits == 1
        cache.clear()
        assert cache.stats().risk_hits == 0
        assert cache.stats().risk_misses == 0

    def test_memoize_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            SimulationCache().memoize(("k",), lambda: 1, kind="spot")

    def test_derived_and_trace_inflight_namespaces_are_disjoint(self):
        """Regression: memoize() and simulate() shared one in-flight map,
        so a derived computation keyed by a scenario key (or a colliding
        tuple) would stall — or race the event teardown of — the trace
        path. A simulate must not wait on a slow memoize of the same key."""
        import threading

        cache = SimulationCache()
        s = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=1, seq_len=64)
        started, release = threading.Event(), threading.Event()

        def slow_fit():
            started.set()
            # Held open until the main thread releases it, so the
            # assertion is about ordering, not machine speed.
            assert release.wait(timeout=30.0)
            return "fit"

        worker = threading.Thread(target=lambda: cache.memoize(s.key(), slow_fit))
        worker.start()
        assert started.wait(timeout=5.0)
        # With a shared in-flight map this would deadlock until the
        # memoize completed; disjoint namespaces let it proceed.
        cache.simulate(s)
        assert cache.stats().simulations == 1
        release.set()
        worker.join()
        assert cache.memoize(s.key(), lambda: "recomputed") == "fit"

    def test_memoize_collapses_concurrent_computes(self):
        import threading
        import time

        cache = SimulationCache()
        calls = []

        def compute():
            calls.append(1)
            time.sleep(0.02)
            return "fit"

        results = []
        threads = [
            threading.Thread(target=lambda: results.append(cache.memoize(("k",), compute)))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert results == ["fit"] * 4
        assert len(calls) == 1

    def test_clear_and_contains(self):
        cache = SimulationCache()
        s = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=1, seq_len=64)
        cache.simulate(s)
        assert s in cache and len(cache) == 1
        cache.clear()
        assert s not in cache and len(cache) == 0
        assert cache.stats().lookups == 0


class TestSweepRunner:
    GRID = ScenarioGrid.product(
        models=(BLACKMAMBA_2_8B,), gpus=(A40,), seq_lens=(64,),
        dense=(True, False), batch_sizes=(1, 2, 3, 4),
    )

    def test_parallel_matches_serial_in_order_and_values(self):
        serial = SweepRunner(cache=SimulationCache(), jobs=1).run(self.GRID)
        parallel = SweepRunner(cache=SimulationCache(), jobs=4).run(self.GRID)
        assert [p.label for p in parallel] == [p.label for p in serial]
        assert [p.queries_per_second for p in parallel] == [
            p.queries_per_second for p in serial
        ]
        assert [p.index for p in parallel] == list(range(len(self.GRID)))

    def test_parallel_duplicates_collapse_in_cache(self):
        cache = SimulationCache()
        doubled = self.GRID + self.GRID
        SweepRunner(cache=cache, jobs=4).run(doubled)
        stats = cache.stats()
        assert stats.entries == len(self.GRID)
        # In-flight dedup: concurrent misses on one key simulate once, so
        # the miss count equals the distinct points, not the lookups.
        assert stats.misses == len(self.GRID)
        assert stats.hits == len(self.GRID)

    def test_to_result_feeds_rows(self):
        result = SweepRunner(cache=SimulationCache()).to_result(
            "demo", "demo sweep", self.GRID[:2], paper={"blackmamba_D1": 2.3}
        )
        assert result.experiment_id == "demo"
        assert [r.label for r in result.rows] == ["blackmamba_D1", "blackmamba_D2"]
        assert result.rows[0].paper == 2.3

    def test_to_result_disambiguates_multi_gpu_grids(self):
        grid = ScenarioGrid.product(
            models=(BLACKMAMBA_2_8B,), gpus=(A40, A100_80), seq_lens=(64,),
            batch_sizes=(1,),
        )
        result = SweepRunner(cache=SimulationCache()).to_result("demo", "t", grid)
        labels = [r.label for r in result.rows]
        assert labels == ["blackmamba_S1_A40", "blackmamba_S1_A100-80GB"]
        assert len(set(labels)) == len(labels)

    def test_to_result_disambiguates_seq_len_sweeps(self):
        grid = ScenarioGrid.product(
            models=(BLACKMAMBA_2_8B,), gpus=(A40,), seq_lens=(64, 128),
            batch_sizes=(1,),
        )
        result = SweepRunner(cache=SimulationCache()).to_result("demo", "t", grid)
        labels = [r.label for r in result.rows]
        assert labels == ["blackmamba_S1_L64", "blackmamba_S1_L128"]
        assert len(set(labels)) == len(labels)

    def test_to_result_falls_back_to_qualified_labels(self):
        # An overrides axis and a same-family model variant both collide
        # under the base label; to_result must emit qualified labels.
        base = ScenarioGrid.product(models=(MIXTRAL_8X7B,), gpus=(A40,),
                                    seq_lens=(64,), batch_sizes=(1,))
        ablation = base + base.map(lambda s: s.with_(overrides={"quantized": False}))
        labels = [
            r.label
            for r in SweepRunner(cache=SimulationCache()).to_result("demo", "t", ablation).rows
        ]
        assert len(set(labels)) == 2
        assert any("quantized=False" in label for label in labels)

        # Renamed variant: qualified labels (model name) disambiguate.
        variants = base + base.map(
            lambda s: s.with_(model=MIXTRAL_8X7B.scaled(num_layers=16, name="mixtral-16L"))
        )
        labels = [
            r.label
            for r in SweepRunner(cache=SimulationCache()).to_result("demo", "t", variants).rows
        ]
        assert len(set(labels)) == 2
        # Unnamed variant (same name, different config): positional
        # suffixes keep rows distinct.
        unnamed = base + base.map(lambda s: s.with_(model=MIXTRAL_8X7B.scaled(num_layers=16)))
        labels = [
            r.label
            for r in SweepRunner(cache=SimulationCache()).to_result("demo", "t", unnamed).rows
        ]
        assert len(set(labels)) == 2


class TestRegressionAgainstSeed:
    def test_fig8_rows_identical_to_direct_simulator(self):
        """The refactored fig8 must reproduce the seed implementation's
        rows exactly: same labels, same order, bitwise-equal values."""
        seed_grid = [
            (MIXTRAL_8X7B, "commonsense15k", True, 1), (MIXTRAL_8X7B, "commonsense15k", True, 2),
            (MIXTRAL_8X7B, "commonsense15k", False, 1), (MIXTRAL_8X7B, "commonsense15k", False, 2),
            (MIXTRAL_8X7B, "commonsense15k", False, 8), (MIXTRAL_8X7B, "math14k", True, 1),
            (MIXTRAL_8X7B, "math14k", False, 1), (MIXTRAL_8X7B, "math14k", False, 3),
            (BLACKMAMBA_2_8B, "commonsense15k", True, 1), (BLACKMAMBA_2_8B, "commonsense15k", True, 6),
            (BLACKMAMBA_2_8B, "commonsense15k", False, 1), (BLACKMAMBA_2_8B, "commonsense15k", False, 6),
            (BLACKMAMBA_2_8B, "commonsense15k", False, 20), (BLACKMAMBA_2_8B, "math14k", True, 1),
            (BLACKMAMBA_2_8B, "math14k", True, 2), (BLACKMAMBA_2_8B, "math14k", False, 1),
            (BLACKMAMBA_2_8B, "math14k", False, 2), (BLACKMAMBA_2_8B, "math14k", False, 8),
        ]
        sim = GPUSimulator(A40)
        seed_rows = [
            (
                f"{cfg.family}_{dataset}_{'D' if dense else 'S'}{batch}",
                sim.throughput(cfg, batch, fig8_throughput.THROUGHPUT_SEQ_LEN[dataset],
                               dense=dense),
            )
            for cfg, dataset, dense, batch in seed_grid
        ]
        result = fig8_throughput.run(cache=SimulationCache())
        assert [(r.label, r.measured) for r in result.rows[: len(seed_rows)]] == seed_rows

    def test_fig8_parallel_identical(self):
        serial = fig8_throughput.run(cache=SimulationCache(), jobs=1)
        parallel = fig8_throughput.run(cache=SimulationCache(), jobs=4)
        assert [(r.label, r.measured) for r in serial.rows] == [
            (r.label, r.measured) for r in parallel.rows
        ]

    def test_table3_cells_exact(self):
        result = table3_maxbatch.run()
        assert all(r.measured == r.paper for r in result.rows)

    def test_cost_model_identical_on_other_gpu(self):
        from repro.core import FineTuningCostModel

        cached = FineTuningCostModel.for_dataset(
            MIXTRAL_8X7B, "gsm8k", dense=False, cache=SimulationCache()
        ).estimate(A100_80, num_queries=1000)
        fresh = FineTuningCostModel.for_dataset(
            MIXTRAL_8X7B, "gsm8k", dense=False, cache=SimulationCache()
        ).estimate(A100_80, num_queries=1000)
        assert cached == fresh


class TestWarmReport:
    def test_second_report_pass_simulates_nothing(self):
        """Acceptance criterion: rerunning the full non-training report in
        one process performs zero redundant simulate_step calls — the miss
        counter must not move on the second pass."""
        first = report.run_report(include_training=False)
        misses_after_first = default_cache().stats().misses
        second = report.run_report(include_training=False)
        stats = default_cache().stats()
        assert stats.misses == misses_after_first
        assert stats.hits >= misses_after_first
        # The reports themselves agree row-for-row.
        assert [l for l in first.splitlines() if not l.startswith("== scenario cache")] == [
            l for l in second.splitlines() if not l.startswith("== scenario cache")
        ]

    def test_json_payload_roundtrips(self):
        import json

        payload = report.report_payload(include_training=False)
        decoded = json.loads(json.dumps(payload))
        ids = {e["id"] for e in decoded["experiments"]}
        assert {"fig8", "table3", "table4", "fig14", "fig15"} <= ids
        assert decoded["skipped"] == ["fig3", "fig11"]
        assert decoded["cache"]["misses"] >= 0
