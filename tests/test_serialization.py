"""Regression tests for strict-JSON serialization.

The spot planner's Monte Carlo percentiles are ``inf`` on degenerate
inputs and its probabilities can be NaN upstream of sanitization;
``json.dumps`` would happily emit bare ``NaN``/``Infinity`` tokens that
strict parsers reject. Every ``--json`` CLI funnels through
:func:`repro.serialization.dumps`, which these tests pin down.
"""

import json
import math

import pytest

from repro.serialization import dumps, json_value, jsonify


class FakeNumpyScalar:
    """Anything exposing ``.item()`` (numpy scalars) unwraps."""

    def __init__(self, value):
        self._value = value

    def item(self):
        return self._value


class TestJsonValue:
    def test_finite_scalars_pass_through(self):
        for value in (None, True, 0, 1.5, "x"):
            assert json_value(value) == value

    def test_nonfinite_floats_become_none(self):
        assert json_value(float("nan")) is None
        assert json_value(float("inf")) is None
        assert json_value(float("-inf")) is None

    def test_numpy_like_scalars_unwrap_and_sanitize(self):
        assert json_value(FakeNumpyScalar(3.5)) == 3.5
        assert json_value(FakeNumpyScalar(float("nan"))) is None

    def test_unconvertible_objects_stringify(self):
        assert json_value(object()).startswith("<object")


class TestJsonify:
    def test_nested_nonfinite_floats_sanitized(self):
        payload = {
            "percentiles": {"p50": float("nan"), "p95": float("inf")},
            "rows": [1.0, float("-inf"), (2.0, float("nan"))],
        }
        clean = jsonify(payload)
        assert clean == {
            "percentiles": {"p50": None, "p95": None},
            "rows": [1.0, None, [2.0, None]],
        }

    def test_nonstring_keys_become_strings(self):
        clean = jsonify({1: "a", 2.5: "b", float("nan"): "c", (1, 2): "d"})
        assert clean == {"1": "a", "2.5": "b", "null": "c", "(1, 2)": "d"}

    def test_bool_keys_take_json_spellings(self):
        # Matches what json.dumps would emit for key-position bools.
        assert jsonify({True: 1, False: 2}) == {"true": 1, "false": 2}

    def test_colliding_keys_raise_instead_of_overwriting(self):
        with pytest.raises(ValueError):
            jsonify({1: "a", "1": "b"})
        with pytest.raises(ValueError):
            jsonify({float("nan"): "a", "null": "b"})

    def test_sets_serialize_deterministically(self):
        assert jsonify({3, 1, 2}) == [1, 2, 3]
        assert jsonify(frozenset({"b", "a"})) == ["a", "b"]


class TestDumps:
    def test_output_is_strict_json(self):
        """Regression: a Monte-Carlo-shaped payload with inf percentiles
        must parse under a strict reader (bare Infinity would not)."""
        payload = {"p50_hours": float("inf"), "completion": float("nan"), "ok": 1.0}
        text = dumps(payload)
        strict = json.loads(
            text, parse_constant=lambda tok: pytest.fail(f"bare token {tok!r}")
        )
        assert strict == {"p50_hours": None, "completion": None, "ok": 1.0}

    def test_round_trip_preserves_finite_structure(self):
        payload = {"a": [1, 2.5, "x"], "b": {"c": None, "d": True}}
        assert json.loads(dumps(payload)) == payload

    def test_allow_nan_is_off_by_default(self):
        # If a non-finite float ever slips past sanitization, dumps must
        # fail loudly rather than emit a bare token. Simulate the slip by
        # checking the flag's effect directly.
        with pytest.raises(ValueError):
            json.dumps(float("nan"), allow_nan=False)
        # dumps sanitizes first, so the same input succeeds as null.
        assert dumps(float("nan")) == "null"

    def test_kwargs_forwarded(self):
        assert dumps({"a": 1}, indent=2).startswith("{\n")
