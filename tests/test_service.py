"""Tests for the planning service: single-flight coalescing, the LRU
cache bound, the TTL/stale-while-revalidate pricing catalog, request
normalization, and the HTTP surface."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cloud.pricing import DEFAULT_CATALOG, GPUPrice, PriceCatalog
from repro.scenarios import (
    DiskTraceStore,
    InFlightMap,
    Scenario,
    SimulationCache,
    SingleFlight,
)
from repro.service import PlanningService, PricingCatalog as LivePricing, RequestError
from repro.service.app import (
    normalize_cluster_request,
    normalize_spot_request,
    request_digest,
)
from repro.service.serve import make_server
from repro.telemetry import validate_file
from repro.telemetry.runstore import RunStore

MIXTRAL_A40 = {"model": "mixtral", "gpu": ["a40"], "deadline_hours": 24}


def scenario(batch_size=1, dense=False):
    return Scenario(
        model="mixtral-8x7b", gpu="A40", batch_size=batch_size,
        seq_len=64, dense=dense,
    )


# ---------------------------------------------------------------------------
# Single-flight primitives
# ---------------------------------------------------------------------------

class TestInFlightMap:
    def test_claim_release(self):
        inflight = InFlightMap()
        event, leader = inflight.claim("k")
        assert leader and "k" in inflight and len(inflight) == 1
        again, second = inflight.claim("k")
        assert again is event and not second
        inflight.release("k")
        assert "k" not in inflight
        inflight.release("k")  # idempotent

    def test_keys_are_independent(self):
        inflight = InFlightMap()
        _, first = inflight.claim("a")
        _, second = inflight.claim("b")
        assert first and second


class TestSingleFlight:
    def test_sequential_calls_each_lead(self):
        flight = SingleFlight()
        assert flight.do("k", lambda: 1) == (1, False)
        assert flight.do("k", lambda: 2) == (2, False)  # coalescing, not caching
        assert flight.stats() == {"leaders": 2, "shared": 0, "inflight": 0}

    def test_concurrent_duplicates_share_one_computation(self):
        flight = SingleFlight()
        calls = []

        def slow():
            calls.append(1)
            time.sleep(0.2)
            return object()

        barrier = threading.Barrier(8)
        results = [None] * 8

        def worker(i):
            barrier.wait()
            results[i] = flight.do("k", slow)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len(calls) == 1
        values = {id(value) for value, _shared in results}
        assert len(values) == 1  # the identical object, not a copy
        assert sum(shared for _v, shared in results) == 7
        assert flight.stats() == {"leaders": 1, "shared": 7, "inflight": 0}

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        entered = threading.Event()
        release = threading.Event()

        def boom():
            entered.set()
            assert release.wait(10)
            raise RuntimeError("leader failed")

        errors = []

        def leader():
            try:
                flight.do("k", boom)
            except RuntimeError as exc:
                errors.append(str(exc))

        def follower():
            assert entered.wait(10)
            try:
                flight.do("k", lambda: "never")
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=leader), threading.Thread(target=follower)]
        threads[0].start()
        assert entered.wait(10)
        threads[1].start()
        deadline = time.time() + 10
        while flight.stats()["shared"] < 1:
            assert time.time() < deadline
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(10)
        assert errors == ["leader failed", "leader failed"]
        assert flight.stats()["inflight"] == 0  # failed keys retry fresh
        assert flight.do("k", lambda: "ok") == ("ok", False)


# ---------------------------------------------------------------------------
# LRU bound on the simulation cache
# ---------------------------------------------------------------------------

class TestCacheLRU:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationCache(capacity=0)

    def test_unbounded_cache_never_evicts(self):
        cache = SimulationCache()
        for batch in (1, 2, 3):
            cache.simulate(scenario(batch))
        stats = cache.stats()
        assert stats.entries == 3 and stats.evictions == 0
        assert cache.capacity is None

    def test_bounded_cache_evicts_lru_and_counts(self):
        cache = SimulationCache(capacity=2)
        for batch in (1, 2, 3):
            cache.simulate(scenario(batch))
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.evictions == 1
        assert scenario(1) not in cache  # oldest evicted
        assert scenario(2) in cache and scenario(3) in cache

    def test_hit_refreshes_recency(self):
        cache = SimulationCache(capacity=2)
        cache.simulate(scenario(1))
        cache.simulate(scenario(2))
        cache.simulate(scenario(1))  # touch: batch 1 is now most recent
        cache.simulate(scenario(3))  # evicts batch 2, not batch 1
        assert scenario(1) in cache and scenario(2) not in cache

    def test_evicted_trace_reserved_from_disk_without_resimulating(self, tmp_path):
        cache = SimulationCache(store=DiskTraceStore(tmp_path), capacity=1)
        cache.simulate(scenario(1))
        cache.simulate(scenario(2))  # evicts batch 1 (already persisted)
        assert cache.stats().evictions == 1
        before = cache.stats().simulations
        trace, source = cache.fetch(scenario(1))
        assert source == "disk"
        assert cache.stats().simulations == before  # zero new simulate_step calls
        assert trace.queries_per_second > 0

    def test_eviction_spills_to_store_attached_after_simulation(self, tmp_path):
        cache = SimulationCache(capacity=1)
        cache.simulate(scenario(1))
        cache.attach_store(DiskTraceStore(tmp_path))  # attached late: not persisted yet
        cache.simulate(scenario(2))  # evicting batch 1 must write it back
        before = cache.stats().simulations
        _, source = cache.fetch(scenario(1))
        assert source == "disk"
        assert cache.stats().simulations == before

    def test_derived_results_bounded_too(self):
        cache = SimulationCache(capacity=2)
        for key in ("a", "b", "c"):
            cache.memoize(("derived", key), lambda: key)
        evictions = cache.stats().evictions
        assert evictions >= 1
        # An evicted derived result recomputes (counts a fresh miss).
        misses = cache.stats().misses
        cache.memoize(("derived", "a"), lambda: "a")
        assert cache.stats().misses == misses + 1

    def test_cachestats_evictions_defaults_for_old_constructions(self):
        from repro.scenarios import CacheStats
        stats = CacheStats(hits=1, misses=1, entries=1)
        assert stats.evictions == 0


# ---------------------------------------------------------------------------
# Pricing: payload interchange + TTL catalog
# ---------------------------------------------------------------------------

class TestPricingPayload:
    def test_roundtrip_preserves_both_tiers(self):
        rebuilt = PriceCatalog.from_payload(DEFAULT_CATALOG.to_payload())
        assert rebuilt.to_payload() == DEFAULT_CATALOG.to_payload()
        assert rebuilt.digest() == DEFAULT_CATALOG.digest()
        assert rebuilt.spot_dollars_per_hour("A40") == DEFAULT_CATALOG.spot_dollars_per_hour("A40")

    def test_digest_distinguishes_price_changes(self):
        catalog = PriceCatalog([GPUPrice("A40", "cudo", 0.79)])
        bumped = PriceCatalog([GPUPrice("A40", "cudo", 0.99)])
        assert catalog.digest() != bumped.digest()

    @pytest.mark.parametrize("payload", [
        None,
        [],
        {"version": 999, "prices": []},
        {"version": 1, "prices": {"not": "a list"}},
        {"version": 1, "prices": [{"gpu": "A40"}]},  # missing fields
        {"version": 1, "prices": [{"gpu": "A40", "provider": "x", "dollars_per_hour": -1}]},
        # spot above on-demand violates the discount-tier invariant
        {"version": 1,
         "prices": [{"gpu": "A40", "provider": "x", "dollars_per_hour": 1.0}],
         "spot_prices": [{"gpu": "A40", "provider": "x", "dollars_per_hour": 2.0}]},
    ])
    def test_malformed_payloads_raise(self, payload):
        with pytest.raises(ValueError):
            PriceCatalog.from_payload(payload)


class FakeFeed:
    """A scriptable feed: push payloads/exceptions, count fetches."""

    def __init__(self):
        self.payload = DEFAULT_CATALOG.to_payload()
        self.error = None
        self.fetches = 0

    def __call__(self, feed):
        self.fetches += 1
        if self.error is not None:
            raise self.error
        return self.payload


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


class TestPricingCatalogTTL:
    def _catalog(self, ttl=60.0):
        feed, clock = FakeFeed(), FakeClock()
        return LivePricing(feed="fake://feed", ttl_seconds=ttl,
                           clock=clock, fetch=feed), feed, clock

    def test_feedless_catalog_is_never_stale(self):
        live = LivePricing()
        catalog, stale = live.get()
        assert catalog is DEFAULT_CATALOG and not stale
        assert live.status()["source"] == "builtin"
        assert live.status()["stale"] is False

    def test_ttl_must_be_positive(self):
        with pytest.raises(ValueError):
            LivePricing(feed="x", ttl_seconds=0)

    def test_first_touch_fetches_synchronously(self):
        live, feed, _clock = self._catalog()
        catalog, stale = live.get()
        assert not stale and feed.fetches == 1
        assert catalog.digest() == DEFAULT_CATALOG.digest()

    def test_within_ttl_serves_from_memory(self):
        live, feed, clock = self._catalog(ttl=60)
        live.get()
        clock.now += 59
        _, stale = live.get()
        assert not stale and feed.fetches == 1  # zero feed I/O on the hot path

    def test_past_ttl_serves_stale_while_revalidating(self):
        live, feed, clock = self._catalog(ttl=60)
        live.get()
        feed.payload = PriceCatalog([GPUPrice("A40", "cudo", 0.99)]).to_payload()
        clock.now += 61
        catalog, stale = live.get()
        assert stale  # served immediately, old prices
        assert catalog.dollars_per_hour("A40") == 0.79
        live.join_refresh(10)
        catalog, stale = live.get()
        assert not stale
        assert catalog.dollars_per_hour("A40") == 0.99
        assert live.status()["refreshes"] == 2

    def test_dead_feed_on_first_touch_serves_fallback_stale(self):
        live, feed, _clock = self._catalog()
        feed.error = OSError("connection refused")
        catalog, stale = live.get()
        assert stale and catalog is DEFAULT_CATALOG
        status = live.status()
        assert status["failures"] == 1
        assert "connection refused" in status["last_error"]

    def test_feed_dying_later_keeps_last_good_catalog(self):
        live, feed, clock = self._catalog(ttl=60)
        live.get()
        feed.error = OSError("feed down")
        clock.now += 61
        catalog, stale = live.get()
        assert stale
        assert catalog.digest() == DEFAULT_CATALOG.digest()  # last good snapshot
        live.join_refresh(10)
        _, still_stale = live.get()
        assert still_stale  # refresh failed; stays stale until the feed heals
        assert live.status()["failures"] >= 1
        feed.error = None
        live.join_refresh(10)
        assert live.refresh()
        _, stale = live.get()
        assert not stale


# ---------------------------------------------------------------------------
# Request normalization
# ---------------------------------------------------------------------------

class TestNormalization:
    def test_defaults_mirror_the_cli(self):
        request = normalize_cluster_request({"model": "mixtral"})
        assert request["model"] == "mixtral-8x7b"
        assert request["dataset"] == "math14k"
        assert request["num_gpus"] == [1, 2, 4, 8]
        assert request["density"] == "both"
        assert request["parallelism"] == "dp"
        assert request["grad_accum"] == [1]
        assert request["epochs"] == 10
        assert request["gpu"] is None and request["provider"] is None

    def test_scalars_and_lists_normalize_identically(self):
        a = normalize_cluster_request({"model": "mixtral", "gpu": "a40"})
        b = normalize_cluster_request({"model": "mixtral", "gpu": ["A40"]})
        assert a == b
        assert a["gpu"] == ["A40"]

    def test_digest_is_spelling_independent(self):
        digest = DEFAULT_CATALOG.digest()
        a = request_digest("cluster", normalize_cluster_request(
            {"model": "mixtral", "gpu": "a40"}), digest)
        b = request_digest("cluster", normalize_cluster_request(
            {"gpu": ["A40"], "model": "MIXTRAL"}), digest)
        assert a == b

    def test_digest_splits_on_catalog_change(self):
        request = normalize_cluster_request({"model": "mixtral"})
        bumped = PriceCatalog([GPUPrice("A40", "cudo", 0.99)])
        assert request_digest("cluster", request, DEFAULT_CATALOG.digest()) != \
            request_digest("cluster", request, bumped.digest())

    @pytest.mark.parametrize("body,fragment", [
        ({}, "model"),
        ({"model": 7}, "model"),
        ({"model": "nope"}, "unknown model"),
        ({"model": "mixtral", "bogus": 1}, "unknown cluster request field"),
        ({"model": "mixtral", "gpu": []}, "empty list"),
        ({"model": "mixtral", "gpu": "z9000"}, "unknown GPU"),
        ({"model": "mixtral", "num_gpus": [0]}, "positive"),
        ({"model": "mixtral", "num_gpus": [True]}, "numbers"),
        ({"model": "mixtral", "density": "extra"}, "density"),
        ({"model": "mixtral", "epochs": 0}, "epochs"),
        ({"model": "mixtral", "deadline_hours": -1}, "positive"),
        ({"model": "mixtral", "parallelism": "tp", "max_tp": 1}, "max_tp"),
        ({"model": "mixtral", "interconnect": "carrier-pigeon"}, "interconnect"),
    ])
    def test_malformed_cluster_bodies_are_400s(self, body, fragment):
        with pytest.raises(RequestError) as excinfo:
            normalize_cluster_request(body)
        assert excinfo.value.status == 400
        assert fragment in str(excinfo.value)

    @pytest.mark.parametrize("body,fragment", [
        ({"model": "mixtral", "confidence": 1.5}, "confidence"),
        ({"model": "mixtral", "risk_mode": "psychic"}, "risk_mode"),
        ({"model": "mixtral", "trials": 0}, "trials"),
        ({"model": "mixtral", "seed": "x"}, "seed"),
        ({"model": "mixtral", "spot": "maybe"}, "spot"),
        ({"model": "mixtral", "mtbp_hours": 0}, "positive"),
    ])
    def test_malformed_spot_bodies_are_400s(self, body, fragment):
        with pytest.raises(RequestError) as excinfo:
            normalize_spot_request(body)
        assert fragment in str(excinfo.value)

    def test_spot_defaults(self):
        request = normalize_spot_request({"model": "mixtral"})
        assert request["spot"] == "both"
        assert request["risk_mode"] == "analytic"
        assert request["confidence"] == 0.95
        assert request["seed"] == 20240724


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class TestServiceWarmPath:
    def test_warm_repeat_simulates_nothing(self):
        service = PlanningService()
        cold = json.loads(service.plan("cluster", dict(MIXTRAL_A40)))
        assert cold["engine"]["simulations"] > 0
        warm = json.loads(service.plan("cluster", dict(MIXTRAL_A40)))
        assert warm["engine"]["simulations"] == 0
        assert warm["engine"]["misses"] == 0
        assert warm["engine"]["hits"] > 0
        assert warm["plan"] == cold["plan"]

    def test_warm_spot_repeat_recomputes_no_risk(self):
        service = PlanningService()
        body = {"model": "mixtral", "gpu": ["a40"], "deadline_hours": 24}
        cold = json.loads(service.plan("spot", body))
        assert cold["engine"]["risk_misses"] > 0
        warm = json.loads(service.plan("spot", body))
        assert warm["engine"]["simulations"] == 0
        assert warm["engine"]["risk_misses"] == 0
        assert warm["engine"]["risk_hits"] > 0
        assert warm["plan"] == cold["plan"]

    def test_unknown_kind_is_404(self):
        with pytest.raises(RequestError) as excinfo:
            PlanningService().plan("quantum", {"model": "mixtral"})
        assert excinfo.value.status == 404

    def test_error_counter_tracks_rejections(self):
        service = PlanningService()
        with pytest.raises(RequestError):
            service.plan("cluster", {"model": "nope"})
        assert service.stats_payload()["requests"]["errors"] == 1

    def test_explicit_cache_excludes_store_and_capacity(self):
        with pytest.raises(ValueError):
            PlanningService(cache=SimulationCache(), capacity=4)


class TestServiceCoalescing:
    def test_concurrent_identical_requests_compute_once(self):
        service = PlanningService()
        n = 6
        release = threading.Event()
        compute = service._compute

        def gated(*args, **kwargs):
            assert release.wait(30)
            return compute(*args, **kwargs)

        service._compute = gated
        results = [None] * n

        def worker(i):
            results[i] = service.plan("cluster", dict(MIXTRAL_A40))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        # Release the leader only once every follower is parked on the
        # in-flight call, so the test is deterministic at any speed.
        deadline = time.time() + 30
        while service.flight.stats()["shared"] < n - 1:
            assert time.time() < deadline, service.flight.stats()
            time.sleep(0.005)
        release.set()
        for t in threads:
            t.join(30)
        assert service.flight.stats() == {"leaders": 1, "shared": n - 1, "inflight": 0}
        assert len(set(results)) == 1  # byte-identical responses
        engine = json.loads(results[0])["engine"]
        assert engine["simulations"] > 0  # exactly one cold computation
        stats = service.stats_payload()
        assert stats["requests"]["total"] == n
        assert stats["requests"]["coalesced"] == n - 1

    def test_distinct_requests_do_not_coalesce(self):
        service = PlanningService()
        sparse = service.plan("cluster", {"model": "mixtral", "gpu": ["a40"], "density": "sparse"})
        dense = service.plan("cluster", {"model": "mixtral", "gpu": ["a40"], "density": "dense"})
        assert sparse != dense
        assert service.flight.stats()["leaders"] == 2


class TestServiceLRU:
    def test_evicted_plans_reserve_from_disk(self, tmp_path):
        service = PlanningService(store=DiskTraceStore(tmp_path), capacity=1)
        first = json.loads(service.plan(
            "cluster", {"model": "mixtral", "gpu": ["a40"], "density": "sparse"}))
        assert first["engine"]["simulations"] > 0
        second = json.loads(service.plan(
            "cluster", {"model": "mixtral", "gpu": ["a40"], "density": "dense"}))
        assert second["engine"]["evictions"] >= 1
        again = json.loads(service.plan(
            "cluster", {"model": "mixtral", "gpu": ["a40"], "density": "sparse"}))
        assert again["engine"]["simulations"] == 0  # zero new simulate_step calls
        assert again["engine"]["disk_hits"] > 0
        assert again["plan"] == first["plan"]
        assert service.stats_payload()["cache"]["capacity"] == 1


class TestServiceStalePricing:
    def test_plans_served_from_stale_catalog_when_feed_is_down(self):
        feed = FakeFeed()
        feed.error = OSError("feed unreachable")
        pricing = LivePricing(feed="fake://feed", clock=FakeClock(), fetch=feed)
        service = PlanningService(pricing=pricing)
        response = json.loads(service.plan("cluster", dict(MIXTRAL_A40)))
        assert response["pricing_stale"] is True
        assert response["pricing"]["stale"] is True
        assert response["plan"]["frontier"]  # still a real plan
        stats = service.stats_payload()
        assert stats["pricing"]["stale"] is True
        assert stats["pricing"]["failures"] >= 1

    def test_price_refresh_splits_the_coalescing_key(self):
        feed, clock = FakeFeed(), FakeClock()
        pricing = LivePricing(feed="fake://feed", ttl_seconds=60,
                              clock=clock, fetch=feed)
        service = PlanningService(pricing=pricing)
        first = json.loads(service.plan("cluster", dict(MIXTRAL_A40)))
        payload = DEFAULT_CATALOG.to_payload()
        for entry in payload["prices"]:
            entry["dollars_per_hour"] *= 2
        for entry in payload["spot_prices"]:
            entry["dollars_per_hour"] *= 2
        feed.payload = payload
        clock.now += 61
        service.plan("cluster", dict(MIXTRAL_A40))  # stale serve + revalidate
        pricing.join_refresh(10)
        third = json.loads(service.plan("cluster", dict(MIXTRAL_A40)))
        assert third["pricing"]["digest"] != first["pricing"]["digest"]
        assert third["request_digest"] != first["request_digest"]
        # Doubled prices, same sweep: the frontier costs doubled too.
        cheapest_first = first["plan"]["cheapest"]["dollars"]
        cheapest_third = third["plan"]["cheapest"]["dollars"]
        assert cheapest_third == pytest.approx(2 * cheapest_first)


# ---------------------------------------------------------------------------
# HTTP surface
# ---------------------------------------------------------------------------

@pytest.fixture
def served(tmp_path):
    """A live server on an ephemeral port with telemetry sinks wired."""
    events = tmp_path / "events.jsonl"
    service = PlanningService(
        telemetry_out=str(events),
        run_store=RunStore(tmp_path / "runs"),
    )
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", service, events, tmp_path / "runs"
    finally:
        server.shutdown()
        server.server_close()


def _get(url):
    with urllib.request.urlopen(url, timeout=30) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return response.status, json.loads(response.read())


class TestHTTP:
    def test_round_trip_with_telemetry(self, served):
        base, _service, events, runs = served
        assert _get(base + "/healthz") == (200, {"status": "ok"})

        status, body = _post(base + "/plan/cluster", MIXTRAL_A40)
        assert status == 200
        assert body["kind"] == "cluster"
        assert body["engine"]["simulations"] > 0
        assert "telemetry" in body

        status, warm = _post(base + "/plan/cluster", MIXTRAL_A40)
        assert warm["engine"]["simulations"] == 0
        assert warm["telemetry"]["manifest"]["cache"]["hits"] > 0

        status, stats = _get(base + "/stats")
        assert stats["requests"]["total"] == 2
        assert stats["cache"]["simulations"] > 0

        counts = validate_file(events)
        assert counts["manifest"] == 1 and counts["span"] >= 2
        assert len(RunStore(runs).records()) == 2

    def test_http_errors(self, served):
        base, service, _events, _runs = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/plan/cluster", {"model": "nope"})
        assert excinfo.value.code == 400
        assert "unknown model" in json.loads(excinfo.value.read())["error"]

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(base + "/plan/teleport", {"model": "mixtral"})
        assert excinfo.value.code == 404

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(base + "/nope")
        assert excinfo.value.code == 404

        request = urllib.request.Request(
            base + "/plan/cluster", data=b"not json", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

        request = urllib.request.Request(
            base + "/plan/cluster", data=b"[1, 2]", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert service.stats_payload()["requests"]["errors"] == 1
