"""Tests for the spot-market risk subsystem."""

import json
import math

import pytest

from repro.cloud.pricing import DEFAULT_CATALOG, GPUPrice, PriceCatalog
from repro.cluster import ClusterPlanner
from repro.gpu import A40, H100
from repro.models import MIXTRAL_8X7B
from repro.models.config import BLACKMAMBA_2_8B
from repro.scenarios import SimulationCache, preset, preset_names
from repro.spot import (
    AnalyticMakespanDistribution,
    CheckpointPolicy,
    ONDEMAND,
    RiskAdjustedPlanner,
    SPOT,
    SpotMarket,
    SpotScenario,
    SpotSimulator,
    checkpoint_state_gb,
    expected_makespan_hours,
    expected_preemptions,
    get_spot_market,
    restart_state_gb,
    segment_lengths,
    spot_product,
)
from repro.spot.plan import main as plan_main


def neutral_catalog() -> PriceCatalog:
    """The default on-demand prices with a spot tier at the *same* rates
    — isolates the risk model from the discount."""
    prices = [
        GPUPrice(gpu, provider, DEFAULT_CATALOG.dollars_per_hour(gpu, provider))
        for provider in DEFAULT_CATALOG.providers()
        for gpu in DEFAULT_CATALOG.gpus(provider)
    ]
    return PriceCatalog(prices, spot_prices=prices)


def policy(minutes=30.0, write_s=10.0, restart_s=120.0) -> CheckpointPolicy:
    return CheckpointPolicy(
        interval_minutes=minutes, write_seconds=write_s, restart_seconds=restart_s
    )


class TestSpotPricingTier:
    def test_default_catalog_has_spot_tier(self):
        assert DEFAULT_CATALOG.has_spot("A40", "cudo")
        assert DEFAULT_CATALOG.has_spot("A40", "runpod")
        assert not DEFAULT_CATALOG.has_spot("A100-80GB", "lambda")
        assert DEFAULT_CATALOG.spot_dollars_per_hour("A40", "cudo") == pytest.approx(0.40)

    def test_spot_is_a_discount_tier(self):
        for provider in DEFAULT_CATALOG.providers():
            for gpu in DEFAULT_CATALOG.gpus(provider):
                if DEFAULT_CATALOG.has_spot(gpu, provider):
                    assert DEFAULT_CATALOG.spot_discount(gpu, provider) <= 1.0

    def test_providers_for_is_backward_compatible(self):
        # On-demand lookup is unchanged by the spot tier: lambda has no
        # spot listing yet still rents the A100-80GB on demand.
        assert DEFAULT_CATALOG.providers_for("A100-80GB") == ["cudo", "lambda", "runpod"]
        assert DEFAULT_CATALOG.spot_providers_for("A100-80GB") == ["cudo", "runpod"]

    def test_unknown_spot_price_raises(self):
        with pytest.raises(KeyError):
            DEFAULT_CATALOG.spot_price_for("A40", "lambda")

    def test_add_spot_rejects_premium_over_ondemand(self):
        catalog = PriceCatalog([GPUPrice("A40", "x", 1.0)])
        with pytest.raises(ValueError):
            catalog.add_spot(GPUPrice("A40", "x", 1.5))
        catalog.add_spot(GPUPrice("A40", "x", 1.0))  # equal is allowed
        assert catalog.has_spot("A40", "x")

    def test_spot_only_listing_is_allowed(self):
        catalog = PriceCatalog([], spot_prices=[GPUPrice("A40", "x", 0.2)])
        assert catalog.has_spot("A40", "x")
        assert catalog.providers_for("A40") == []

    def test_add_cannot_undercut_an_existing_spot_listing(self):
        # The discount invariant holds from both sides: updating the
        # on-demand tier below an existing spot quote must fail too.
        catalog = PriceCatalog([GPUPrice("A40", "x", 1.0)],
                               spot_prices=[GPUPrice("A40", "x", 0.9)])
        with pytest.raises(ValueError):
            catalog.add(GPUPrice("A40", "x", 0.5))
        catalog.add(GPUPrice("A40", "x", 0.9))  # equal is allowed
        assert catalog.spot_discount("A40", "x") <= 1.0


class TestSpotMarket:
    def test_registry_and_default(self):
        assert get_spot_market("cudo").mtbp_hours == 8.0
        assert get_spot_market("runpod").mtbp_hours == 4.0
        unknown = get_spot_market("somecloud")
        assert unknown.provider == "somecloud" and unknown.mtbp_hours == 6.0

    def test_mtbp_override(self):
        assert get_spot_market("cudo", mtbp_hours=2.0).mtbp_hours == 2.0

    def test_infinite_mtbp_means_zero_hazard(self):
        market = SpotMarket("x", mtbp_hours=float("inf"))
        assert market.preemptions_per_hour == 0.0
        assert market.preemption_probability(1e9) == 0.0

    def test_fleet_rate_scales_with_cluster_size(self):
        market = SpotMarket("x", mtbp_hours=8.0)
        assert market.fleet_rate_per_hour(8) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            market.fleet_rate_per_hour(0)

    def test_preemption_probability(self):
        market = SpotMarket("x", mtbp_hours=2.0)
        assert market.preemption_probability(2.0) == pytest.approx(1 - math.exp(-1))
        assert market.preemption_probability(0.0) == 0.0

    def test_invalid_mtbp(self):
        for bad in (0.0, -1.0, float("nan")):
            with pytest.raises(ValueError):
                SpotMarket("x", mtbp_hours=bad)


class TestCheckpointPolicy:
    def test_state_size_follows_the_recipe(self):
        # QLoRA checkpoints adapters + moments, not the frozen weights.
        mixtral = checkpoint_state_gb(MIXTRAL_8X7B)
        assert 2.0 < mixtral < 4.0
        # Full fine-tuning checkpoints weights + moments.
        blackmamba = checkpoint_state_gb(BLACKMAMBA_2_8B)
        assert 25.0 < blackmamba < 32.0
        assert blackmamba > mixtral

    def test_restart_reloads_weights_plus_checkpoint(self):
        assert restart_state_gb(MIXTRAL_8X7B) > checkpoint_state_gb(MIXTRAL_8X7B)

    def test_for_model_derives_costs_from_state(self):
        p = CheckpointPolicy.for_model(MIXTRAL_8X7B, interval_minutes=15.0)
        assert p.interval_minutes == 15.0
        assert p.write_seconds == pytest.approx(checkpoint_state_gb(MIXTRAL_8X7B))
        assert p.restart_seconds == pytest.approx(
            180.0 + restart_state_gb(MIXTRAL_8X7B)
        )
        # Slower durable storage, slower checkpoints.
        slow = CheckpointPolicy.for_model(
            MIXTRAL_8X7B, interval_minutes=15.0, disk_bandwidth_gbs=0.5
        )
        assert slow.write_seconds == pytest.approx(2 * p.write_seconds)

    def test_validation(self):
        with pytest.raises(ValueError):
            policy(minutes=0.0)
        with pytest.raises(ValueError):
            policy(write_s=-1.0)
        with pytest.raises(ValueError):
            CheckpointPolicy.for_model(MIXTRAL_8X7B, disk_bandwidth_gbs=0.0)


class TestHazardClosedForm:
    def test_zero_rate_equals_ondemand_makespan(self):
        """The load-bearing identity: no hazard -> no checkpoints -> the
        uninterrupted makespan, exactly (not approximately)."""
        p = policy()
        for work in (0.5, 13.0, 52.0):
            assert expected_makespan_hours(work, 0.0, p) == work
            assert expected_preemptions(work, 0.0, p) == 0.0

    def test_segment_structure(self):
        p = policy(minutes=30.0, write_s=36.0)  # tau=0.5h, c=0.01h
        assert segment_lengths(0.0, p) == []
        # Interval longer than the job: one write-free segment.
        assert segment_lengths(0.3, p) == [0.3]
        # Exact division: the last interval is the final (write-free) one.
        lengths = segment_lengths(1.0, p)
        assert lengths == pytest.approx([0.51, 0.5])
        # Remainder: full segments carry the write, the tail does not.
        lengths = segment_lengths(1.25, p)
        assert lengths == pytest.approx([0.51, 0.51, 0.25])
        # Work is conserved regardless of structure.
        for work in (0.3, 1.0, 1.25, 7.77):
            total = sum(segment_lengths(work, p))
            writes = sum(1 for s in segment_lengths(work, p)) - 1
            assert total == pytest.approx(work + max(0, writes) * p.write_hours)

    def test_interval_longer_than_job_single_segment_formula(self):
        p = policy(minutes=600.0)  # 10h interval, 2h job
        rate = 0.25
        expected = expected_makespan_hours(2.0, rate, p)
        assert expected == pytest.approx(
            (1.0 / rate + p.restart_hours) * math.expm1(rate * 2.0)
        )
        assert expected > 2.0  # risk only ever stretches the clock

    def test_makespan_increases_with_hazard(self):
        p = policy()
        makespans = [expected_makespan_hours(13.0, r, p) for r in (0.0, 0.1, 0.5, 1.0)]
        assert makespans == sorted(makespans)
        assert makespans[0] == 13.0

    def test_checkpointing_caps_the_blowup(self):
        # With checkpoints the expectation stays near-linear in the work;
        # without them it goes exponential.
        rate = 0.5
        with_ckpt = expected_makespan_hours(20.0, rate, policy(minutes=30.0))
        without = expected_makespan_hours(20.0, rate, policy(minutes=20.0 * 60))
        assert with_ckpt < 2 * 20.0
        assert without > 100 * 20.0

    def test_extreme_hazard_saturates_to_inf_instead_of_overflowing(self):
        # rate * segment >> 709 overflows exp(); the expectation is
        # "never finishes", not an OverflowError.
        p = policy(minutes=30.0)
        assert expected_makespan_hours(20.0, 8000.0, p) == math.inf
        assert expected_preemptions(20.0, 8000.0, p) == math.inf

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            expected_makespan_hours(1.0, -0.1, policy())
        with pytest.raises(ValueError):
            segment_lengths(-1.0, policy())

    def test_even_division_tolerance_scales_with_the_job(self):
        """Regression: a long job whose work_hours accumulated float
        drift used to fail the absolute ``tau * 1e-9`` even-division test
        and emit a spurious near-zero final segment, inflating expected
        preemptions by one extra segment term."""
        p = policy(minutes=7.0, write_s=0.0)
        tau = p.interval_hours
        n = 500_000
        work = 0.0
        for _ in range(n):  # drift: work != n * tau exactly
            work += tau
        residue = work - int(work // tau) * tau
        # The scenario is real only while the drift exceeds the old
        # absolute tolerance (guards the constants against bit-rot).
        assert residue > tau * 1e-9
        lengths = segment_lengths(work, p)
        assert len(lengths) == n
        assert lengths[-1] == pytest.approx(tau)
        assert min(lengths) > tau * 0.5  # no near-zero segment anywhere
        # And the preemption expectation matches the clean-division job.
        rate = 0.05
        assert expected_preemptions(work, rate, p) == pytest.approx(
            n * math.expm1(rate * tau), rel=1e-6
        )

    def test_genuine_small_remainders_are_still_segments(self):
        # The relative tolerance must not swallow real (if small) tails:
        # 1% of an interval is work, not float noise.
        p = policy(minutes=30.0, write_s=0.0)
        tau = p.interval_hours
        lengths = segment_lengths(10 * tau + tau * 0.01, p)
        assert len(lengths) == 11
        assert lengths[-1] == pytest.approx(tau * 0.01)


class TestSpotSimulator:
    def test_zero_rate_is_a_point_mass_at_the_work(self):
        dist = SpotSimulator(trials=64, seed=1).simulate(13.0, 0.0, policy())
        assert set(dist.samples) == {13.0}
        assert dist.mean_preemptions == 0.0
        assert dist.completion_probability(13.0) == 1.0

    def test_deterministic_across_runs_and_instances(self):
        a = SpotSimulator(trials=128, seed=7).simulate(13.0, 0.25, policy())
        b = SpotSimulator(trials=128, seed=7).simulate(13.0, 0.25, policy())
        assert a == b
        c = SpotSimulator(trials=128, seed=8).simulate(13.0, 0.25, policy())
        assert a != c

    def test_seed_override_wins(self):
        sim = SpotSimulator(trials=64, seed=1)
        assert sim.simulate(5.0, 0.5, policy(), seed=2) == SpotSimulator(
            trials=64, seed=2
        ).simulate(5.0, 0.5, policy())

    def test_mean_and_median_agree_with_closed_form_on_long_jobs(self):
        p = policy()
        rate = 0.5
        dist = SpotSimulator(trials=512, seed=3).simulate(26.0, rate, p)
        expected = expected_makespan_hours(26.0, rate, p)
        assert dist.mean_hours == pytest.approx(expected, rel=0.03)
        assert dist.p50_hours == pytest.approx(expected, rel=0.05)
        assert dist.p95_hours > dist.p50_hours
        assert dist.mean_preemptions == pytest.approx(
            expected_preemptions(26.0, rate, p), rel=0.15
        )

    def test_degenerate_hazard_produces_inf_percentiles(self):
        # A segment that essentially never completes: the simulator cuts
        # trials off as inf instead of looping forever, and the
        # serializer later maps inf to null.
        p = policy(minutes=600.0, restart_s=0.0)
        dist = SpotSimulator(trials=8, seed=5).simulate(100.0, 5.0, p)
        assert math.isinf(dist.p95_hours)
        assert dist.completion_probability(1e9) < 1.0

    def test_abandoned_trials_excluded_from_mean_preemptions(self):
        """Regression: preemptions racked up by abandoned (inf) trials —
        an artifact of the non-termination guards, growing with the
        attempt cap — used to be folded into ``mean_preemptions``."""
        p = policy(minutes=600.0, restart_s=0.0)
        # Hazard so high every trial blows through the guard: each
        # abandoned trial has seen thousands of preemptions by cutoff.
        dist = SpotSimulator(trials=16, seed=5).simulate(100.0, 50.0, p)
        assert dist.abandoned_trials == dist.trials
        assert dist.completed_trials == 0
        assert set(dist.samples) == {math.inf}
        assert dist.mean_preemptions == 0.0  # guard noise, not statistics

    def test_mixed_abandonment_counts_only_completed_trials(self):
        # A hazard where some seeds finish and some hit the time cap: the
        # mean must stay finite and consistent with the completed share.
        p = policy(minutes=600.0, restart_s=0.0)
        sim = SpotSimulator(trials=64, seed=5, max_makespan_hours=3000.0)
        dist = sim.simulate(100.0, 0.5, p)
        finite = [s for s in dist.samples if math.isfinite(s)]
        assert dist.completed_trials == len(finite)
        assert 0 < dist.abandoned_trials < dist.trials
        assert math.isfinite(dist.mean_preemptions)
        # Abandoned trials saw >= cap-many restarts; had they leaked into
        # the mean it would exceed the cap-free expectation by orders of
        # magnitude. Completed 100h trials at rate 0.5 average a few
        # thousand preemptions — bound it loosely from both sides.
        assert 100.0 < dist.mean_preemptions < 10_000.0

    def test_distribution_accessors(self):
        dist = SpotSimulator(trials=100, seed=9).simulate(10.0, 0.3, policy())
        assert dist.trials == 100
        assert dist.samples == tuple(sorted(dist.samples))
        assert dist.percentile(1.0) == dist.samples[-1]
        with pytest.raises(ValueError):
            dist.percentile(0.0)
        with pytest.raises(ValueError):
            dist.percentile(1.5)
        assert dist.completion_probability(None) == 1.0

    def test_invalid_trials(self):
        with pytest.raises(ValueError):
            SpotSimulator(trials=0)

    def test_repeat_calls_share_no_stream_state(self):
        """Each simulate call opens a fresh seeded stream: calling the
        same simulator twice yields the identical distribution, not a
        continuation of the first call's stream."""
        sim = SpotSimulator(trials=64, seed=3)
        assert sim.simulate(8.0, 0.4, policy()) == sim.simulate(8.0, 0.4, policy())

    def test_mean_hours_counts_completed_trials_only(self):
        """Regression: a single abandoned (inf) trial used to poison
        ``mean_hours`` for the whole distribution."""
        p = policy(minutes=600.0, restart_s=0.0)
        sim = SpotSimulator(trials=64, seed=5, max_makespan_hours=3000.0)
        dist = sim.simulate(100.0, 0.5, p)
        assert 0 < dist.abandoned_trials < dist.trials
        assert math.isfinite(dist.mean_hours)  # completed-trials mean
        assert math.isinf(dist.mean_hours_all)  # every-sample mean
        # With no abandonment the two means coincide.
        clean = SpotSimulator(trials=64, seed=5).simulate(10.0, 0.3, policy())
        assert clean.abandoned_trials == 0
        assert clean.mean_hours == clean.mean_hours_all
        # All-abandoned mirrors mean_preemptions: 0.0, not inf/NaN.
        hopeless = SpotSimulator(trials=8, seed=5).simulate(100.0, 50.0, p)
        assert hopeless.completed_trials == 0
        assert hopeless.mean_hours == 0.0
        assert math.isinf(hopeless.mean_hours_all)


class TestAnalyticMakespanDistribution:
    def test_zero_hazard_is_the_on_demand_point_mass_on_both_paths(self):
        """At lam == 0 the analytic path and the Monte Carlo agree with
        the on-demand makespan *exactly* — no tolerance."""
        p = policy()
        ana = AnalyticMakespanDistribution(13.0, 0.0, p)
        mc = SpotSimulator(trials=64, seed=1).simulate(13.0, 0.0, p)
        assert ana.mean_hours == 13.0
        assert ana.p50_hours == ana.p95_hours == 13.0
        assert ana.percentile(0.999) == 13.0
        assert ana.completion_probability(13.0) == 1.0
        assert ana.completion_probability(12.99) == 0.0
        assert mc.p50_hours == ana.p50_hours
        assert mc.p95_hours == ana.p95_hours
        assert mc.mean_hours == ana.mean_hours

    def test_mean_is_the_exact_closed_form(self):
        p = policy()
        for rate in (0.05, 0.5, 2.0):
            ana = AnalyticMakespanDistribution(26.0, rate, p)
            assert ana.mean_hours == expected_makespan_hours(26.0, rate, p)

    @pytest.mark.parametrize(
        "work,rate,minutes",
        [
            (26.0, 0.05, 30.0),  # light: ~1 preemption over the job
            (26.0, 0.5, 30.0),   # moderate: lam*s ~ 0.25 per segment
            (13.0, 2.0, 30.0),   # heavy: lam*s ~ 1, restarts dominate
            (26.0, 4.0, 10.0),   # hostile but still completing
        ],
    )
    def test_percentiles_agree_with_high_trial_monte_carlo(self, work, rate, minutes):
        """Acceptance: across hazard regimes the closed form stays within
        the documented 5% serving tolerance of a high-trial Monte Carlo."""
        p = policy(minutes=minutes)
        ana = AnalyticMakespanDistribution(work, rate, p)
        mc = SpotSimulator(trials=4096, seed=11).simulate(work, rate, p)
        assert ana.p50_hours == pytest.approx(mc.p50_hours, rel=0.05)
        assert ana.p95_hours == pytest.approx(mc.p95_hours, rel=0.05)
        deadline = ana.percentile(0.8)
        assert ana.completion_probability(deadline) == pytest.approx(
            mc.completion_probability(deadline), abs=0.05
        )

    def test_degenerate_regime_matches_monte_carlo_abandonment(self):
        """A job whose expectation exceeds the makespan cap reports the
        same way the Monte Carlo guards do: inf percentiles, completion
        probability zero."""
        p = policy(minutes=600.0, restart_s=0.0)
        ana = AnalyticMakespanDistribution(100.0, 5.0, p)
        mc = SpotSimulator(trials=8, seed=5).simulate(100.0, 5.0, p)
        assert math.isinf(ana.p50_hours) and math.isinf(ana.p95_hours)
        assert ana.completion_probability(1e9) == 0.0
        assert ana.completion_probability(None) == 1.0
        assert math.isinf(mc.p95_hours)

    def test_percentiles_are_monotone_and_bounded_below_by_the_work(self):
        ana = AnalyticMakespanDistribution(26.0, 0.5, policy())
        values = [ana.percentile(q) for q in (0.05, 0.25, 0.5, 0.75, 0.95, 0.999)]
        assert values == sorted(values)
        assert values[0] >= 26.0  # never faster than the work itself

    def test_validation(self):
        with pytest.raises(ValueError):
            AnalyticMakespanDistribution(10.0, -0.1, policy())
        with pytest.raises(ValueError):
            AnalyticMakespanDistribution(10.0, 0.5, policy(), grid_size=8)
        ana = AnalyticMakespanDistribution(10.0, 0.5, policy())
        with pytest.raises(ValueError):
            ana.percentile(0.0)
        with pytest.raises(ValueError):
            ana.percentile(1.5)


class TestSpotScenarioAndPreset:
    def scenario(self, minutes=30.0, n=4, link="nvlink"):
        return SpotScenario(
            model=MIXTRAL_8X7B, gpu="A40", batch_size=4, seq_len=128,
            num_gpus=n, interconnect=link, checkpoint_minutes=minutes,
        )

    def test_cadence_axis_excluded_from_trace_key(self):
        """All cadences of one cluster point share one cached trace."""
        keys = {self.scenario(minutes=m).key() for m in (10.0, 30.0, 60.0)}
        assert len(keys) == 1
        cluster_keys = {self.scenario(minutes=m).cluster_key() for m in (10.0, 30.0)}
        assert len(cluster_keys) == 1
        spot_keys = {self.scenario(minutes=m).spot_key() for m in (10.0, 30.0)}
        assert len(spot_keys) == 2

    def test_labels_carry_the_cadence(self):
        s = self.scenario(minutes=15.0, n=8)
        assert s.label().endswith("_x8_NVLink_ck15m")
        assert "_ck15m" in s.qualified_label()

    def test_invalid_cadence(self):
        with pytest.raises(ValueError):
            self.scenario(minutes=0.0)

    def test_spot_scaling_preset_round_trip(self):
        assert "spot-scaling" in preset_names()
        grid = preset("spot-scaling")
        assert len(grid) == 48  # cluster-scaling's 16 cells x 3 cadences
        assert all(isinstance(s, SpotScenario) for s in grid)
        # Round trip: rebuilding the preset yields the identical grid.
        assert preset("spot-scaling") == grid
        # The cadence axis adds no replica traces over cluster-scaling.
        assert {s.key() for s in grid} == {s.key() for s in preset("cluster-scaling")}

    def test_preset_simulates_nothing_beyond_cluster_scaling(self):
        cache = SimulationCache()
        for s in preset("spot-scaling"):
            cache.simulate(s)
        assert cache.stats().misses == len({s.key() for s in preset("spot-scaling")})

    def test_spot_product_cadence_innermost(self):
        grid = spot_product(
            models=(MIXTRAL_8X7B,), gpus=("A40",), seq_lens=(128,),
            num_gpus=(1, 2), checkpoint_minutes=(10.0, 30.0),
        )
        assert [(s.num_gpus, s.checkpoint_minutes) for s in grid] == [
            (1, 10.0), (1, 30.0), (2, 10.0), (2, 30.0)
        ]


class TestRiskAdjustedPlanner:
    def _planner(self, cache=None, **kw):
        kw.setdefault("dataset", "math14k")
        # `is None`, not truthiness: an *empty* SimulationCache is falsy
        # (it defines __len__), and `cache or ...` would silently swap a
        # caller's cold cache for a fresh one.
        kw.setdefault("cache", SimulationCache() if cache is None else cache)
        return RiskAdjustedPlanner("mixtral-8x7b", **kw)

    def _plan(self, planner=None, **kw):
        planner = planner or self._planner()
        kw.setdefault("gpus", (A40, H100))
        kw.setdefault("providers", ("cudo",))
        kw.setdefault("densities", (False,))
        return planner.plan_spot(**kw)

    def test_every_candidate_priced_on_both_tiers(self):
        plan = self._plan()
        by_tier = {}
        for c in plan.candidates:
            by_tier.setdefault(c.tier, []).append(c)
        assert len(by_tier[ONDEMAND]) == len(by_tier[SPOT])
        assert len(by_tier[ONDEMAND]) == len(plan.ondemand.candidates)

    def test_spot_candidates_save_money_or_are_excluded(self):
        """Acceptance (a): no listed spot candidate costs more than its
        own on-demand counterpart; the rest carry recorded reasons."""
        plan = self._plan()
        for c in plan.spot_candidates:
            assert c.expected_dollars <= c.ondemand_dollars
        # Pin the pre-Daly menu default: at a 0.2 h MTBP a 30-minute
        # cadence loses more to redone work than the discount recovers.
        harsh = self._plan(
            self._planner(mtbp_hours=0.2, checkpoint_minutes=(30.0,))
        )
        assert not harsh.spot_candidates
        assert harsh.excluded
        assert all("exceeds on-demand" in reason for reason in harsh.excluded)
        # Daly's closed-form cadence rescues some of those candidates:
        # sqrt(2*MTBP*C) shortens the interval until spot saves again.
        daly = self._plan(self._planner(mtbp_hours=0.2))
        assert daly.spot_candidates
        # Even an overflow-grade hazard excludes cleanly (expected cost
        # saturates to inf) rather than crashing the plan.
        hopeless = self._plan(self._planner(mtbp_hours=1e-4))
        assert not hopeless.spot_candidates
        assert hopeless.excluded

    def test_zero_hazard_neutral_prices_reproduce_ondemand_frontier(self):
        """Acceptance (b): with the preemption rate at zero and the spot
        discount neutralized, risk-adjusted planning degenerates to the
        PR 2 on-demand plan exactly."""
        cache = SimulationCache()
        catalog = neutral_catalog()
        risk = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="math14k", cache=cache, catalog=catalog,
            mtbp_hours=float("inf"),
        )
        kwargs = dict(gpus=(A40, H100), providers=("cudo",), densities=(False,))
        spot_plan = risk.plan_spot(spot="only", **kwargs)
        baseline = ClusterPlanner(
            "mixtral-8x7b", dataset="math14k", cache=cache, catalog=catalog
        ).plan(**kwargs)
        assert [
            (c.base.label, c.expected_hours, c.p50_hours, c.p95_hours, c.expected_dollars)
            for c in spot_plan.frontier
        ] == [(c.label, c.hours, c.hours, c.hours, c.dollars) for c in baseline.frontier]
        for c in spot_plan.spot_candidates:
            assert c.expected_preemptions == 0.0
            assert c.completion_probability == 1.0
        # The embedded on-demand plan is the PR 2 answer, bit for bit.
        assert spot_plan.ondemand.to_payload() == baseline.to_payload()

    def test_zero_hazard_with_discount_keeps_hours_shrinks_dollars(self):
        plan = self._plan(self._planner(mtbp_hours=float("inf")))
        for c in plan.spot_candidates:
            assert c.expected_hours == c.ondemand_hours
            assert c.expected_dollars < c.ondemand_dollars

    def test_risk_frontier_is_nondominated(self):
        plan = self._plan()
        frontier = plan.frontier
        assert frontier
        p95 = [c.p95_hours for c in frontier]
        dollars = [c.expected_dollars for c in frontier]
        assert p95 == sorted(p95)
        assert all(b < a for a, b in zip(dollars, dollars[1:]))
        for candidate in plan.candidates:
            if candidate in frontier:
                continue
            assert any(
                f.p95_hours <= candidate.p95_hours
                and f.expected_dollars <= candidate.expected_dollars
                for f in frontier
            )

    def test_confidence_constrains_the_recommendation(self):
        plan = self._plan(deadline_hours=24.0, confidence=0.95)
        assert plan.recommended is not None
        assert plan.recommended.completion_probability >= 0.95
        for c in plan.feasible:
            assert plan.recommended.expected_dollars <= c.expected_dollars
        # Demanding certainty forces the pick toward on-demand (a spot
        # candidate can never promise probability 1.0 under hazard).
        certain = self._plan(deadline_hours=24.0, confidence=1.0)
        assert certain.recommended is not None
        assert certain.recommended.completion_probability == 1.0

    def test_cadence_menu_picks_the_best_per_candidate(self):
        menu = self._plan(
            self._planner(mtbp_hours=1.0, checkpoint_minutes=(5.0, 30.0, 120.0))
        )
        single = self._plan(self._planner(mtbp_hours=1.0, checkpoint_minutes=(120.0,)))
        menu_spot = {c.base.label: c for c in menu.spot_candidates}
        for label, c in ((c.base.label, c) for c in single.spot_candidates):
            assert menu_spot[label].expected_hours <= c.expected_hours
        assert any(
            c.policy.interval_minutes != 120.0 for c in menu.spot_candidates
        )

    def test_cadence_ties_break_deterministically(self):
        # At zero hazard every cadence yields the identical expectation;
        # the planner must pick the shortest interval, not crash trying
        # to order CheckpointPolicy instances.
        plan = self._plan(
            self._planner(
                mtbp_hours=float("inf"), checkpoint_minutes=(10.0, 30.0, 60.0)
            )
        )
        assert plan.spot_candidates
        assert all(
            c.policy.interval_minutes == 10.0 for c in plan.spot_candidates
        )

    def test_spot_modes(self):
        only = self._plan(spot="only")
        assert all(c.tier == SPOT for c in only.candidates)
        off = self._plan(spot="off")
        assert all(c.tier == ONDEMAND for c in off.candidates)
        with pytest.raises(ValueError):
            self._plan(spot="sometimes")
        with pytest.raises(ValueError):
            self._plan(confidence=1.5)

    def test_provider_without_spot_tier_is_noted_not_failed(self):
        planner = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="math14k", cache=SimulationCache()
        )
        plan = planner.plan_spot(
            gpus=("A100-80GB",), providers=("lambda",), densities=(False,)
        )
        assert not plan.spot_candidates
        assert any(c.tier == ONDEMAND for c in plan.candidates)
        assert any("no spot tier" in reason for reason in plan.excluded)

    def test_risk_sweep_adds_zero_simulations(self):
        """The risk layer is post-processing: a risk plan on a cache
        warmed by the plain cluster planner simulates nothing."""
        cache = SimulationCache()
        kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(False,))
        ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache).plan(**kwargs)
        misses = cache.stats().misses
        plan = self._plan(self._planner(cache=cache), **kwargs)
        assert cache.stats().misses == misses
        assert plan.spot_candidates

    def test_jobs_do_not_change_the_plan(self):
        payloads = [
            self._plan(
                self._planner(jobs=jobs), deadline_hours=24.0
            ).to_payload()
            for jobs in (1, 4)
        ]
        assert payloads[0] == payloads[1]

    def test_mc_distribution_is_candidate_deterministic(self):
        a = self._plan()
        b = self._plan()
        assert a.to_payload() == b.to_payload()

    def test_invalid_cadence_menu(self):
        with pytest.raises(ValueError):
            self._planner(checkpoint_minutes=())

    def test_invalid_risk_mode(self):
        with pytest.raises(ValueError):
            self._planner(risk_mode="exact")

    def test_analytic_mode_never_samples(self, monkeypatch):
        """The default serving path is sampling-free: poison the Monte
        Carlo and the analytic plan must not notice."""
        planner = self._planner()
        def boom(*args, **kwargs):
            raise AssertionError("analytic mode must not run the Monte Carlo")
        monkeypatch.setattr(planner.simulator, "simulate", boom)
        plan = self._plan(planner)
        assert plan.spot_candidates

    def test_analytic_serves_mc_validates_within_tolerance(self):
        """Acceptance: on the spot-scaling cadence menu the analytic
        percentiles stay within the documented 5% of the 512-trial
        Monte Carlo, candidate by candidate."""
        kwargs = dict(checkpoint_minutes=(10.0, 30.0, 60.0))
        ana = self._plan(self._planner(risk_mode="analytic", **kwargs))
        mc = self._plan(self._planner(risk_mode="mc", **kwargs))
        by_label = {c.label: c for c in mc.spot_candidates}
        assert {c.label for c in ana.spot_candidates} == set(by_label)
        assert ana.spot_candidates
        for c in ana.spot_candidates:
            m = by_label[c.label]
            assert c.expected_hours == m.expected_hours  # shared closed form
            assert c.p50_hours == pytest.approx(m.p50_hours, rel=0.05)
            assert c.p95_hours == pytest.approx(m.p95_hours, rel=0.05)

    def test_both_mode_reports_the_sampled_mean_alongside(self):
        plan = self._plan(self._planner(risk_mode="both"))
        assert plan.spot_candidates
        for c in plan.spot_candidates:
            assert math.isfinite(c.mc_mean_hours)
            assert c.mc_mean_hours == pytest.approx(c.expected_hours, rel=0.05)
        # Without sampling the field degrades to the closed-form mean.
        ana = self._plan(self._planner(risk_mode="analytic"))
        for c in ana.spot_candidates:
            assert c.mc_mean_hours == c.expected_hours

    def test_risk_mode_recorded_in_payload(self):
        assert self._plan().to_payload()["risk_mode"] == "analytic"
        mc = self._plan(self._planner(risk_mode="mc"))
        assert mc.to_payload()["risk_mode"] == "mc"
        assert "risk mode: mc" in mc.to_table()

    def test_warm_risk_plan_recomputes_nothing(self):
        """Acceptance: risk results are memoized — a second plan over the
        same cache books only risk hits, zero new risk computations, and
        reproduces the first plan bit for bit."""
        cache = SimulationCache()
        first = self._plan(self._planner(cache=cache))
        stats = cache.stats()
        assert stats.risk_misses > 0
        assert stats.risk_hits == 0  # every bundle was new
        misses = stats.risk_misses
        second = self._plan(self._planner(cache=cache))
        stats = cache.stats()
        assert stats.risk_misses == misses
        assert stats.risk_hits > 0
        assert second.to_payload() == first.to_payload()


class TestSpotPlanCLI:
    ACCEPTANCE = ["--model", "mixtral", "--gpu", "a40", "--deadline-hours", "24",
                  "--confidence", "0.95", "--json"]

    def _payload(self, capsys, argv):
        assert plan_main(argv) == 0
        out = capsys.readouterr().out
        # Strict JSON: bare NaN/Infinity tokens must not appear.
        return json.loads(out, parse_constant=lambda tok: pytest.fail(
            f"non-strict JSON token {tok!r} in --json output"
        ))

    def test_acceptance_command(self, capsys):
        payload = self._payload(capsys, self.ACCEPTANCE)
        assert payload["model"] == "mixtral-8x7b"
        assert payload["confidence"] == 0.95
        assert payload["num_spot_candidates"] > 0
        listed = [c for c in payload["frontier"]]
        for key in ("recommended", "fastest"):
            if payload[key] is not None:
                listed.append(payload[key])
        spot_entries = [c for c in listed if c["tier"] == "spot"]
        assert spot_entries
        for c in spot_entries:
            # (a) every listed spot candidate saves money in expectation.
            assert c["expected_dollars"] <= c["ondemand_dollars"]
            # (c) Monte Carlo p50 agrees with the closed form within 5%.
            assert abs(c["p50_hours"] - c["expected_hours"]) <= 0.05 * c["expected_hours"]
        # The recommendation honors the deadline with the required confidence.
        assert payload["recommended"]["completion_probability"] >= 0.95

    def test_zero_hazard_cli_reproduces_ondemand_hours(self, capsys):
        payload = self._payload(
            capsys, self.ACCEPTANCE + ["--mtbp-hours", "inf"]
        )
        for c in payload["frontier"]:
            assert c["expected_hours"] == pytest.approx(c["ondemand_hours"])
            assert c["p95_hours"] == pytest.approx(c["ondemand_hours"])
        assert payload["ondemand_frontier"]  # the PR 2 view rides along

    def test_output_deterministic_and_jobs_independent(self, capsys):
        assert plan_main(self.ACCEPTANCE) == 0
        first = capsys.readouterr().out
        assert plan_main(self.ACCEPTANCE) == 0
        second = capsys.readouterr().out
        assert plan_main(self.ACCEPTANCE + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert first == second == parallel

    def test_text_output_names_recommendation(self, capsys):
        assert plan_main(["--model", "mixtral", "--gpu", "a40",
                          "--deadline-hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "recommended:" in out
        assert "risk-pareto configuration" in out

    def test_spot_off_matches_cluster_planner_numbers(self, capsys):
        payload = self._payload(
            capsys,
            ["--model", "mixtral", "--gpu", "a40", "--spot", "off", "--json"],
        )
        assert payload["num_spot_candidates"] == 0
        for c in payload["frontier"]:
            assert c["tier"] == "ondemand"
            assert c["expected_dollars"] == pytest.approx(c["ondemand_dollars"])

    def test_risk_mode_default_is_analytic(self, capsys):
        payload = self._payload(capsys, self.ACCEPTANCE)
        assert payload["risk_mode"] == "analytic"

    def test_risk_mode_mc_byte_identical_across_jobs(self, capsys):
        """Acceptance: the batched Monte Carlo is seeded per candidate,
        so --risk-mode mc output is byte-identical at any --jobs."""
        argv = self.ACCEPTANCE + ["--risk-mode", "mc"]
        assert plan_main(argv) == 0
        first = capsys.readouterr().out
        assert plan_main(argv + ["--jobs", "4"]) == 0
        fanned = capsys.readouterr().out
        assert fanned == first
        assert json.loads(first)["risk_mode"] == "mc"

    def test_invalid_risk_mode_rejected(self, capsys):
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--risk-mode", "exact"])
        assert "--risk-mode" in capsys.readouterr().err

    def test_bad_flags_error_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--checkpoint-minutes", "0"])
        assert "cadences must be" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--mtbp-hours", "-2"])
        assert "mtbp-hours" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--confidence", "2"])
        assert "confidence" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--trials", "0"])
        assert "trials" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--checkpoint-minutes", "nan"])
        assert "cadences must be" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "gpt2"])
        assert "unknown model" in capsys.readouterr().err


class TestSpotExperiment:
    def test_experiment_registered_and_runs(self):
        from repro.experiments import ALL_EXPERIMENTS, spot_plan

        assert ALL_EXPERIMENTS["spot"] is spot_plan
        result = spot_plan.run(cache=SimulationCache())
        measured = result.measured_dict()
        assert measured["num_spot_candidates"] >= 1
        assert measured["recommended_saving_vs_ondemand"] >= 0.0
        assert measured["max_makespan_inflation"] >= 1.0
        assert measured["max_mc_mean_vs_closed_form"] <= 0.05
        assert measured["recommended_completion_probability"] >= 0.95
