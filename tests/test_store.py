"""Tests for the persistence + parallelism layer of the scenario engine:
canonical scenario digests, the disk-backed trace store (atomicity,
versioning, corruption tolerance), the tiered cache, the process-pool
sweep executor, and the CLIs' --cache-dir / --executor contract."""

import json
import os
import pickle
import shutil
import subprocess
import sys
import threading

import pytest

from repro.cluster import ClusterScenario
from repro.cluster.plan import main as cluster_plan_main
from repro.gpu import A40
from repro.models import BLACKMAMBA_2_8B
from repro.scenarios import (
    DiskTraceStore,
    ENV_CACHE_DIR,
    Scenario,
    ScenarioGrid,
    SimulationCache,
    SweepRunner,
    resolve_store,
)
from repro.scenarios.store import FORMAT_VERSION
from repro.serialization import dumps
from repro.spot.plan import main as spot_plan_main


def scenario(batch_size: int = 1, **kwargs) -> Scenario:
    return Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=batch_size,
                    seq_len=kwargs.pop("seq_len", 64), **kwargs)


GRID = ScenarioGrid.product(
    models=(BLACKMAMBA_2_8B,), gpus=(A40,), seq_lens=(64,),
    dense=(True, False), batch_sizes=(1, 2, 3, 4),
)


class TestScenarioDigest:
    def test_digest_is_sha256_of_canonical_text(self):
        import hashlib

        s = scenario()
        expected = hashlib.sha256(s.canonical_text().encode()).hexdigest()
        assert s.digest() == expected
        assert len(s.digest()) == 64

    def test_equal_resolved_keys_share_a_digest(self):
        # Registry-key vs object spelling, and dataset vs explicit
        # seq_len, resolve to one key — and must name one disk entry.
        by_key = Scenario(model="blackmamba-2.8b", gpu="A40", dataset="commonsense15k")
        by_obj = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, seq_len=79)
        assert by_key.key() == by_obj.key()
        assert by_key.canonical_text() == by_obj.canonical_text()
        assert by_key.digest() == by_obj.digest()

    def test_distinct_scenarios_get_distinct_digests(self):
        digests = {s.digest() for s in GRID}
        assert len(digests) == len(GRID)

    def test_cluster_scenario_shares_the_replica_digest(self):
        # ClusterScenario inherits key() (the replica trace ignores the
        # cluster axes), so it must hit the same disk entry too.
        cluster = ClusterScenario(model=BLACKMAMBA_2_8B, gpu=A40, seq_len=64,
                                  num_gpus=8, interconnect="pcie-gen4")
        assert cluster.digest() == scenario().digest()

    def test_digest_is_stable_across_interpreter_runs(self):
        # key() tuples hash differently per run (PYTHONHASHSEED); the
        # digest is the cross-process identity, so a fresh interpreter
        # must reproduce it bit-for-bit.
        code = (
            "from repro.models import BLACKMAMBA_2_8B\n"
            "from repro.gpu import A40\n"
            "from repro.scenarios import Scenario\n"
            "print(Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=3,\n"
            "               seq_len=128, dense=True).digest())\n"
        )
        env = dict(os.environ, PYTHONHASHSEED="12345")
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run([sys.executable, "-c", code], capture_output=True,
                             text=True, env=env, cwd=os.path.dirname(os.path.dirname(__file__)))
        assert out.returncode == 0, out.stderr
        local = Scenario(model=BLACKMAMBA_2_8B, gpu=A40, batch_size=3,
                         seq_len=128, dense=True).digest()
        assert out.stdout.strip() == local


class TestDiskTraceStore:
    def test_round_trip(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario(batch_size=2)
        trace = SimulationCache().simulate(s)
        assert store.get(s) is None
        store.put(s, trace)
        loaded = store.get(s)
        assert loaded == trace
        assert s in store
        assert len(store) == 1
        assert store.digests() == [s.digest()]

    def test_clear(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        store.put(s, SimulationCache().simulate(s))
        store.clear()
        assert len(store) == 0 and store.get(s) is None

    def test_truncated_entry_reads_as_miss(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        store.put(s, SimulationCache().simulate(s))
        path = store.path_for(s.digest())
        path.write_bytes(path.read_bytes()[:20])
        assert store.get(s) is None

    def test_garbage_entry_reads_as_miss(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        store.path_for(s.digest()).write_bytes(b"this is not a pickle at all")
        assert store.get(s) is None

    def test_foreign_pickle_reads_as_miss(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        store.path_for(s.digest()).write_bytes(pickle.dumps([1, 2, 3]))
        assert store.get(s) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        trace = SimulationCache().simulate(s)
        entry = {"version": FORMAT_VERSION + 1, "scenario": s.canonical_text(),
                 "trace": trace}
        store.path_for(s.digest()).write_bytes(pickle.dumps(entry))
        assert store.get(s) is None

    def test_canonical_text_mismatch_reads_as_miss(self, tmp_path):
        # A digest collision (or a renamed entry) must never hand back
        # the wrong trace.
        store = DiskTraceStore(tmp_path)
        a, b = scenario(batch_size=1), scenario(batch_size=2)
        store.put(a, SimulationCache().simulate(a))
        shutil.copy(store.path_for(a.digest()), store.path_for(b.digest()))
        assert store.get(b) is None
        assert store.get(a) is not None

    def test_corrupt_entry_forces_resimulation_not_a_crash(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        SimulationCache(store=store).simulate(s)  # writes the entry
        store.path_for(s.digest()).write_bytes(b"\x80garbage")
        cache = SimulationCache(store=store)
        trace = cache.simulate(s)
        stats = cache.stats()
        assert (stats.simulations, stats.disk_hits) == (1, 0)
        # The re-simulation healed the entry on disk.
        assert store.get(s) == trace

    def test_concurrent_writers_never_corrupt(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        trace = SimulationCache().simulate(s)
        errors = []

        def writer():
            for _ in range(25):
                store.put(s, trace)

        def reader():
            for _ in range(50):
                loaded = store.get(s)  # valid entry or miss, never junk
                if loaded is not None and loaded != trace:
                    errors.append("reader observed a wrong/partial trace")

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.get(s) == trace
        # No abandoned temporary files survive the melee.
        leftovers = [p for p in os.listdir(tmp_path) if p.startswith(".tmp-")]
        assert leftovers == []

    def test_resolve_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(ENV_CACHE_DIR, raising=False)
        assert resolve_store(None) is None
        assert resolve_store(tmp_path).root == tmp_path
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "from-env"))
        store = resolve_store(None)
        assert store is not None and store.root == tmp_path / "from-env"
        # An explicit dir wins over the environment.
        assert resolve_store(tmp_path / "explicit").root == tmp_path / "explicit"


class TestTieredCache:
    def test_memory_then_disk_then_simulate(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        s = scenario()
        cold = SimulationCache(store=store)
        first = cold.simulate(s)
        assert (cold.stats().misses, cold.stats().simulations) == (1, 1)
        cold.simulate(s)
        assert cold.stats().hits == 1  # memory tier

        warm = SimulationCache(store=store)  # fresh process stand-in
        loaded = warm.simulate(s)
        stats = warm.stats()
        assert loaded == first
        assert (stats.disk_hits, stats.simulations, stats.misses) == (1, 0, 0)
        warm.simulate(s)
        assert warm.stats().hits == 1  # promoted into memory

    def test_warm_store_means_zero_simulations_for_a_whole_grid(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        SweepRunner(cache=SimulationCache(store=store)).run(GRID)
        warm = SimulationCache(store=store)
        points = SweepRunner(cache=warm).run(GRID)
        assert warm.stats().simulations == 0
        assert warm.stats().disk_hits == len(GRID)
        assert [p.label for p in points] == [s.label() for s in GRID]

    def test_attach_store_retrofits_the_disk_tier(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        SimulationCache(store=store).simulate(scenario())
        cache = SimulationCache()
        cache.attach_store(store)
        cache.simulate(scenario())
        assert cache.stats().disk_hits == 1


class TestProcessExecutor:
    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(executor="fork-bomb")

    def test_process_pool_matches_thread_pool_bytes_and_accounting(self):
        serial_cache = SimulationCache()
        serial = SweepRunner(cache=serial_cache, jobs=1).run(GRID)
        process_cache = SimulationCache()
        process = SweepRunner(cache=process_cache, jobs=2, executor="process").run(GRID)
        as_bytes = lambda points: dumps(
            [(p.index, p.label, p.total_seconds, p.queries_per_second) for p in points]
        )
        assert as_bytes(process) == as_bytes(serial)
        # Replayed accounting is indistinguishable from the serial run.
        assert process_cache.stats() == serial_cache.stats()

    def test_process_pool_replays_duplicate_hits_in_grid_order(self):
        # Dispatch is deduplicated by key, so a doubled grid costs the
        # workers (and the counters) exactly what the serial run pays.
        doubled = GRID + GRID
        serial_cache = SimulationCache()
        SweepRunner(cache=serial_cache, jobs=1).run(doubled)
        process_cache = SimulationCache()
        SweepRunner(cache=process_cache, jobs=2, executor="process").run(doubled)
        assert process_cache.stats() == serial_cache.stats()
        assert process_cache.stats().simulations == len(GRID)

    def test_process_pool_skips_traces_already_resident_in_memory(self):
        # A warm parent memory means nothing is dispatched: the second
        # pass is pure memory hits and no worker simulates anything.
        cache = SimulationCache()
        first = SweepRunner(cache=cache, jobs=1).run(GRID)
        before = cache.stats().simulations
        second = SweepRunner(cache=cache, jobs=2, executor="process").run(GRID)
        stats = cache.stats()
        assert stats.simulations == before
        assert stats.hits == len(GRID)
        assert [a.trace is b.trace for a, b in zip(first, second)] == [True] * len(GRID)

    def test_process_workers_warm_the_shared_store(self, tmp_path):
        store = DiskTraceStore(tmp_path)
        cache = SimulationCache(store=store)
        SweepRunner(cache=cache, jobs=2, executor="process").run(GRID)
        assert len(store) == len(GRID)  # workers wrote every trace
        warm = SimulationCache(store=store)
        SweepRunner(cache=warm, jobs=2, executor="process").run(GRID)
        stats = warm.stats()
        assert (stats.simulations, stats.disk_hits) == (0, len(GRID))


PLAN_ARGS = [
    "--model", "blackmamba", "--gpu", "a40", "--provider", "cudo",
    "--num-gpus", "1,2", "--interconnect", "nvlink", "--density", "sparse",
    "--json",
]


class TestPlanCLI:
    def run_plan(self, capsys, *extra) -> str:
        assert cluster_plan_main(PLAN_ARGS + list(extra)) == 0
        return capsys.readouterr().out

    def test_process_executor_output_byte_identical(self, capsys, tmp_path):
        baseline = self.run_plan(capsys, "--jobs", "1")
        process = self.run_plan(
            capsys, "--executor", "process", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        )
        assert process == baseline
        json.loads(baseline)  # stays valid JSON

    def test_cache_dir_populates_and_reuses_the_store(self, capsys, tmp_path):
        cold = self.run_plan(capsys, "--cache-dir", str(tmp_path))
        assert len(DiskTraceStore(tmp_path)) > 0
        warm = self.run_plan(capsys, "--cache-dir", str(tmp_path))
        assert warm == cold

    def test_env_var_is_the_default_cache_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_DIR, str(tmp_path / "env-store"))
        out = self.run_plan(capsys)
        assert len(DiskTraceStore(tmp_path / "env-store")) > 0
        json.loads(out)


class TestSpotPlanCLIDeterminism:
    """The PR 4 byte-identity contract extended to the risk planner's
    Monte Carlo path: per-candidate seeding makes --risk-mode mc output
    independent of --jobs, the executor, and the disk store."""

    SPOT_ARGS = PLAN_ARGS + ["--deadline-hours", "24", "--risk-mode", "mc"]

    def run_spot(self, capsys, *extra) -> str:
        assert spot_plan_main(self.SPOT_ARGS + list(extra)) == 0
        return capsys.readouterr().out

    def test_mc_process_executor_output_byte_identical(self, capsys, tmp_path):
        baseline = self.run_spot(capsys, "--jobs", "1")
        process = self.run_spot(
            capsys, "--executor", "process", "--jobs", "2",
            "--cache-dir", str(tmp_path),
        )
        assert process == baseline
        payload = json.loads(baseline)  # stays valid JSON
        assert payload["risk_mode"] == "mc"

    def test_mc_cache_dir_reuse_is_byte_identical(self, capsys, tmp_path):
        cold = self.run_spot(capsys, "--cache-dir", str(tmp_path))
        assert len(DiskTraceStore(tmp_path)) > 0
        warm = self.run_spot(capsys, "--cache-dir", str(tmp_path))
        assert warm == cold


class TestReportDeterminism:
    def test_process_executor_report_bytes_identical(self):
        from repro.experiments import report
        from repro.scenarios import reset_default_cache

        reset_default_cache()
        serial = dumps(report.report_payload(include_training=False), indent=2)
        reset_default_cache()
        process = dumps(
            report.report_payload(include_training=False, jobs=2, executor="process"),
            indent=2,
        )
        assert process == serial
