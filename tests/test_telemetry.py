"""Tests for the telemetry subsystem: tracer spans and their
determinism contract, the metrics registry, the JSONL schema
validator, run manifests, and the CLIs' --telemetry/--telemetry-out
wiring (including byte-identity of untraced output)."""

import json
import math

import pytest

from repro.gpu import A40
from repro.models import BLACKMAMBA_2_8B
from repro.scenarios import (
    Scenario,
    ScenarioGrid,
    SimulationCache,
    SweepRunner,
    reset_default_cache,
)
from repro.spot.plan import main as spot_plan_main
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SCHEMA_VERSION,
    Tracer,
    build_manifest,
    default_tracer,
    grid_digest,
    merge_snapshots,
    metric_events,
    reset_default_tracer,
    resolve_tracer,
    validate_event,
    validate_file,
    write_events,
)

GRID = ScenarioGrid.product(
    models=(BLACKMAMBA_2_8B,), gpus=(A40,), seq_lens=(64,),
    dense=(False,), batch_sizes=(1, 2, 3, 4),
)


@pytest.fixture
def fresh_globals():
    """A clean process-global tracer and cache, restored (disabled)
    afterwards so telemetry state never leaks into other tests."""
    tracer = reset_default_tracer()
    cache = reset_default_cache()
    yield tracer, cache
    reset_default_tracer()
    reset_default_cache()


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_record_parent_links(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans()
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.finished and inner.finished
        assert inner.duration_seconds <= outer.duration_seconds

    def test_attributes_seed_and_mutate(self):
        tracer = Tracer()
        with tracer.span("work", cells=3) as sp:
            sp.attributes["points"] = 5
        (span,) = tracer.spans()
        assert span.attributes == {"cells": 3, "points": 5}

    def test_disabled_tracer_is_a_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as sp:
            sp.attributes["lost"] = True  # lands in a throwaway dict
        assert len(tracer) == 0
        assert tracer.tree_shape() == ()

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.finished
        assert span.attributes["error"] == "ValueError"

    def test_tree_shape_strips_timings(self):
        tracer = Tracer()
        with tracer.span("plan"):
            with tracer.span("enumerate"):
                pass
            with tracer.span("simulate"):
                pass
        assert tracer.tree_shape() == (
            ("plan", (("enumerate", ()), ("simulate", ()))),
        )

    def test_adopt_spans_reids_and_remaps_parents(self):
        worker = Tracer()
        with worker.span("chunk"):
            with worker.span("fetch"):
                pass
        parent = Tracer()
        with parent.span("sweep") as sp:
            parent.adopt_spans(worker.export(), parent_id=sp.span_id)
        shape = parent.tree_shape()
        assert shape == (("sweep", (("chunk", (("fetch", ()),)),)),)
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_phase_seconds_sums_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        phases = tracer.phase_seconds()
        assert set(phases) == {"phase"}
        assert phases["phase"] >= 0.0

    def test_render_tree_mentions_every_span(self):
        tracer = Tracer()
        with tracer.span("a", answer=42):
            with tracer.span("b"):
                pass
        rendered = tracer.render_tree()
        assert "a" in rendered and "b" in rendered and "answer=42" in rendered

    def test_reset_drops_spans_but_keeps_enabled(self):
        tracer = Tracer()
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert len(tracer) == 0 and tracer.enabled

    def test_resolve_tracer_defaults_to_global(self):
        assert resolve_tracer(None) is default_tracer()
        mine = Tracer()
        assert resolve_tracer(mine) is mine

    def test_default_tracer_starts_disabled(self, fresh_globals):
        tracer, _ = fresh_globals
        assert tracer.enabled is False
        with tracer.span("invisible"):
            pass
        assert len(tracer) == 0


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------
class TestMetrics:
    def test_counter_only_goes_up(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_summarizes(self):
        hist = Histogram("h")
        for value in (2.0, 0.5, 1.0):
            hist.observe(value)
        snap = hist.snapshot()
        buckets = snap.pop("buckets")
        assert snap == {"type": "histogram", "count": 3, "sum": 3.5,
                        "min": 0.5, "max": 2.0}
        # The bounded-memory buckets account for every observation.
        assert sum(count for _, count in buckets) == 3
        assert hist.mean == pytest.approx(3.5 / 3)

    def test_empty_histogram_has_null_extremes(self):
        snap = Histogram("h").snapshot()
        assert snap["count"] == 0 and snap["min"] is None and snap["max"] is None

    def test_registry_get_or_create_and_type_conflict(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_registry_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc(2)
        assert list(registry.snapshot()) == ["a.first", "z.last"]

    def test_registry_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        handle = registry.counter("kept")
        handle.inc(7)
        registry.reset()
        assert handle.value == 0
        assert registry.counter("kept") is handle

    def test_merge_snapshots_sorts_and_combines(self):
        left = MetricsRegistry()
        left.counter("cache.hits").inc()
        right = MetricsRegistry()
        right.counter("store.writes").inc(2)
        merged = merge_snapshots(left.snapshot(), right.snapshot())
        assert list(merged) == ["cache.hits", "store.writes"]
        assert merged["store.writes"]["value"] == 2


# ---------------------------------------------------------------------------
# Schema
# ---------------------------------------------------------------------------
class TestSchema:
    def span_event(self, **overrides):
        event = {"type": "span", "name": "s", "id": 1, "parent": None,
                 "start_s": 0.0, "duration_s": 0.1, "attrs": {}}
        event.update(overrides)
        return event

    def test_valid_span_metric_manifest(self):
        assert validate_event(self.span_event()) == "span"
        assert validate_event({"type": "metric", "name": "m",
                               "kind": "counter", "value": 3}) == "metric"
        assert validate_event({"type": "metric", "name": "h", "kind": "histogram",
                               "count": 0, "sum": 0.0, "min": None,
                               "max": None}) == "metric"

    @pytest.mark.parametrize("mutation", [
        {"type": "bogus"},
        {"id": 0},
        {"duration_s": -1.0},
        {"start_s": float("inf")},
        {"attrs": "not-a-dict"},
    ])
    def test_invalid_spans_rejected(self, mutation):
        with pytest.raises(ValueError):
            validate_event(self.span_event(**mutation))

    def test_nonempty_histogram_needs_extremes(self):
        with pytest.raises(ValueError):
            validate_event({"type": "metric", "name": "h", "kind": "histogram",
                            "count": 1, "sum": 1.0, "min": None, "max": None})
        with pytest.raises(ValueError):  # and empty ones must not have them
            validate_event({"type": "metric", "name": "h", "kind": "histogram",
                            "count": 0, "sum": 0.0, "min": 0.5, "max": 0.5})

    def test_manifest_schema_version_enforced(self):
        tracer = Tracer()
        cache = SimulationCache()
        manifest = build_manifest("cmd", {}, tracer, cache.stats())
        assert validate_event(manifest) == "manifest"
        manifest["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError):
            validate_event(manifest)

    def test_validate_file_reports_line_numbers(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            json.dumps(self.span_event()) + "\n" + json.dumps({"type": "bogus"}) + "\n"
        )
        with pytest.raises(ValueError, match="line 2"):
            validate_file(path)


# ---------------------------------------------------------------------------
# Manifest + export
# ---------------------------------------------------------------------------
class TestManifest:
    def test_grid_digest_tracks_grid_identity(self):
        other = ScenarioGrid.product(
            models=(BLACKMAMBA_2_8B,), gpus=(A40,), seq_lens=(64,),
            dense=(False,), batch_sizes=(1, 2),
        )
        assert grid_digest(GRID) == grid_digest(list(GRID))
        assert grid_digest(GRID) != grid_digest(other)
        assert grid_digest([]) is None

    def test_manifest_cache_block_matches_stats_exactly(self):
        cache = SimulationCache()
        runner = SweepRunner(cache=cache)
        runner.run(GRID)
        runner.run(GRID)  # warm pass: hits
        stats = cache.stats()
        manifest = build_manifest("cmd", {"jobs": 1}, Tracer(), stats)
        assert manifest["cache"] == {
            "hits": stats.hits, "disk_hits": stats.disk_hits,
            "misses": stats.misses, "simulations": stats.simulations,
            "risk_hits": stats.risk_hits, "risk_misses": stats.risk_misses,
            "evictions": stats.evictions, "entries": stats.entries,
        }
        assert manifest["cache"]["hits"] == len(GRID)

    def test_write_events_roundtrips_through_validator(self, tmp_path):
        tracer = Tracer()
        cache = SimulationCache()
        with tracer.span("work"):
            cache.simulate(next(iter(GRID)))
        manifest = build_manifest("cmd", {"top": 10}, tracer, cache.stats())
        path = tmp_path / "sub" / "events.jsonl"  # parent dir is created
        lines = write_events(path, tracer, cache.metrics.snapshot(), manifest)
        counts = validate_file(path)
        assert counts["manifest"] == 1
        assert counts["span"] == 1
        assert sum(counts.values()) == lines

    def test_crashed_write_events_leaves_no_truncated_file(self, tmp_path):
        """Atomic-write contract: an export that dies mid-write must not
        leave a partial JSONL at the target path (a fresh path stays
        absent; an existing complete export stays intact), and must not
        leak its temp file."""
        tracer = Tracer()
        with tracer.span("work", payload={1, 2}):  # a set is not JSON
            pass
        path = tmp_path / "events.jsonl"
        with pytest.raises(TypeError):
            write_events(path, tracer, {}, None)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []  # no orphaned temp file

        # Overwrite case: a previous complete export survives the crash.
        good = Tracer()
        with good.span("work"):
            pass
        write_events(path, good, {}, None)
        before = path.read_text(encoding="utf-8")
        with pytest.raises(TypeError):
            write_events(path, tracer, {}, None)
        assert path.read_text(encoding="utf-8") == before
        assert validate_file(path)["span"] == 1

    def test_metric_events_cover_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(1.0)
        events = metric_events(registry.snapshot())
        assert {e["kind"] for e in events} == {"counter", "histogram"}
        for event in events:
            validate_event(event)


# ---------------------------------------------------------------------------
# Determinism: the span tree and metric totals are independent of --jobs
# ---------------------------------------------------------------------------
class TestDeterminism:
    def collect(self, jobs, executor):
        tracer = Tracer()
        cache = SimulationCache()
        runner = SweepRunner(cache=cache, jobs=jobs, executor=executor,
                             tracer=tracer)
        points = runner.run(GRID)
        histograms = {
            name: snap["count"]
            for name, snap in cache.metrics.snapshot().items()
            if snap["type"] == "histogram"
        }
        return points, tracer.tree_shape(), cache.stats(), histograms

    def test_process_pool_matches_serial_shape_and_totals(self):
        serial_points, serial_shape, serial_stats, serial_hist = self.collect(
            1, "thread"
        )
        process_points, process_shape, process_stats, process_hist = self.collect(
            4, "process"
        )
        assert process_shape == serial_shape
        assert process_stats == serial_stats
        assert process_hist == serial_hist
        assert [p.trace.total_seconds for p in process_points] == [
            p.trace.total_seconds for p in serial_points
        ]

    def test_thread_pool_matches_too(self):
        _, serial_shape, serial_stats, serial_hist = self.collect(1, "thread")
        _, thread_shape, thread_stats, thread_hist = self.collect(4, "thread")
        assert thread_shape == serial_shape
        assert thread_stats == serial_stats
        assert thread_hist == serial_hist

    def warm_run_events(self, jobs):
        """A full event log for a *warm* traced sweep at a job count:
        the cache is pre-populated untraced, so every traced phase is
        pure bookkeeping — well under the compare gate's noise floor."""
        cache = SimulationCache()
        SweepRunner(cache=cache, jobs=jobs, executor="thread").run(GRID)
        tracer = Tracer(enabled=True)
        runner = SweepRunner(cache=cache, jobs=jobs, executor="thread",
                             tracer=tracer)
        runner.run(GRID)
        manifest = build_manifest("sweep", {"jobs": jobs}, tracer,
                                  cache.stats(), grid=grid_digest(GRID))
        events = list(tracer.export())
        events.extend(metric_events(cache.metrics.snapshot()))
        events.append(manifest)
        return events

    def test_compare_verdict_stable_across_jobs(self):
        """The regression gate must not flip with --jobs: warm phases
        sit below the absolute noise floor, and the engine counters are
        jobs-independent by the determinism contract, so jobs=1 vs
        jobs=4 compares 'ok' in both directions with zero counter
        deltas."""
        from repro.telemetry.compare import compare_runs

        serial = self.warm_run_events(1)
        pooled = self.warm_run_events(4)
        for baseline, candidate in ((serial, pooled), (pooled, serial)):
            result = compare_runs(baseline, candidate)
            assert result["verdict"] == "ok"
            assert result["regressions"] == []
            assert result["counters"] == []


# ---------------------------------------------------------------------------
# CLI wiring
# ---------------------------------------------------------------------------
SPOT_ARGS = ["--model", "blackmamba", "--gpu", "a40", "--provider", "cudo",
             "--num-gpus", "1,2", "--density", "sparse",
             "--interconnect", "pcie-gen4"]


class TestCLIs:
    def test_untraced_json_has_no_telemetry_key(self, capsys, fresh_globals):
        assert spot_plan_main(SPOT_ARGS + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "telemetry" not in payload

    def test_telemetry_flag_gates_the_json_block(self, capsys, tmp_path,
                                                 fresh_globals):
        assert spot_plan_main(SPOT_ARGS + ["--json"]) == 0
        untraced = json.loads(capsys.readouterr().out)
        reset_default_tracer()
        reset_default_cache()
        out = tmp_path / "events.jsonl"
        assert spot_plan_main(
            SPOT_ARGS + ["--json", "--telemetry", "--telemetry-out", str(out)]
        ) == 0
        captured = capsys.readouterr()
        traced = json.loads(captured.out)
        block = traced.pop("telemetry")
        # Byte-identity modulo the flag-gated block: the plan itself is
        # untouched by tracing.
        assert traced == untraced
        # The stderr tree names the command and the phases.
        assert "repro.spot.plan" in captured.err
        assert "planner.enumerate" in captured.err
        # The JSONL log validates and carries spans + metrics + manifest.
        counts = validate_file(out)
        assert counts["manifest"] == 1
        assert counts["span"] >= 5
        assert counts["metric"] >= 6
        # The span tree covers every planner phase.
        names = {e["name"] for e in block["spans"]}
        assert {"planner.enumerate", "planner.simulate", "planner.price",
                "planner.risk", "planner.risk_pareto", "sweep.run"} <= names

    def test_manifest_cache_block_matches_live_stats(self, capsys, tmp_path,
                                                     fresh_globals):
        _, cache = fresh_globals
        out = tmp_path / "events.jsonl"
        assert spot_plan_main(SPOT_ARGS + ["--telemetry-out", str(out)]) == 0
        capsys.readouterr()
        manifest = [
            json.loads(line) for line in out.read_text().splitlines()
            if json.loads(line)["type"] == "manifest"
        ][0]
        stats = cache.stats()  # the CLI used the default cache
        assert manifest["cache"]["hits"] == stats.hits
        assert manifest["cache"]["misses"] == stats.misses
        assert manifest["cache"]["simulations"] == stats.simulations
        assert manifest["cache"]["entries"] == stats.entries
        assert manifest["command"] == "repro.spot.plan"
        assert manifest["grid_digest"] is not None
        assert manifest["args"]["model"] == "blackmamba"
        for phase in ("planner.plan_spot", "planner.simulate", "planner.risk"):
            assert manifest["phases"][phase] >= 0.0

    def test_report_cli_emits_validating_log(self, capsys, tmp_path,
                                             fresh_globals):
        from repro.experiments.report import main as report_main

        out = tmp_path / "report.jsonl"
        assert report_main(["--json", "--telemetry-out", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out)
        counts = validate_file(out)
        assert counts["manifest"] == 1
        manifest = payload["telemetry"]["manifest"]
        assert manifest["command"] == "repro.experiments.report"
        assert manifest["grid_digest"] is None  # no single swept grid
        span_names = {s["name"] for s in payload["telemetry"]["spans"]}
        assert "report.collect" in span_names
        assert any(name.startswith("experiment.") for name in span_names)


# ---------------------------------------------------------------------------
# Satellite regressions: SweepPoint guards and hit-rate semantics
# ---------------------------------------------------------------------------
class TestDegenerateTraces:
    def make_point(self, total_seconds):
        from repro.gpu.trace import StepTrace
        from repro.scenarios.runner import SweepPoint

        trace = StepTrace(
            gpu=A40, batch_size=1, seq_len=64, dense=False, timings=[],
            software_overhead_seconds=total_seconds,
        )
        return SweepPoint(index=0, scenario=next(iter(GRID)), trace=trace)

    def test_zero_time_trace_reports_no_throughput(self):
        point = self.make_point(0.0)
        assert point.queries_per_second == 0.0
        assert point.total_seconds == math.inf

    def test_nan_time_trace_reports_no_throughput(self):
        point = self.make_point(float("nan"))
        assert point.queries_per_second == 0.0
        assert point.total_seconds == math.inf

    def test_healthy_trace_unchanged(self):
        cache = SimulationCache()
        runner = SweepRunner(cache=cache)
        point = runner.run(GRID)[0]
        assert point.queries_per_second > 0.0
        assert point.total_seconds == point.trace.total_seconds
        assert point.queries_per_second == pytest.approx(
            point.trace.batch_size / point.trace.total_seconds
        )

    def test_cost_math_survives_degenerate_point(self):
        from repro.core.cost import wall_clock_hours

        point = self.make_point(0.0)
        assert wall_clock_hours(1000, point.queries_per_second) == math.inf


class TestHitRates:
    def test_any_tier_versus_memory_only(self):
        from repro.scenarios.cache import CacheStats

        stats = CacheStats(hits=6, misses=2, entries=8, disk_hits=2)
        assert stats.lookups == 10
        assert stats.hit_rate == pytest.approx(0.8)  # (6 + 2) / 10
        assert stats.memory_hit_rate == pytest.approx(0.6)  # 6 / 10

    def test_zero_lookups_is_zero_not_nan(self):
        from repro.scenarios.cache import CacheStats

        stats = CacheStats(hits=0, misses=0, entries=0)
        assert stats.hit_rate == 0.0
        assert stats.memory_hit_rate == 0.0

    def test_disk_tier_separates_the_rates(self, tmp_path):
        from repro.scenarios import DiskTraceStore

        store = DiskTraceStore(tmp_path)
        warm = SimulationCache(store=store)
        for scenario in GRID:
            warm.simulate(scenario)  # populate the store
        cold = SimulationCache(store=store)
        for scenario in GRID:
            cold.simulate(scenario)  # every lookup lands in the disk tier
        stats = cold.stats()
        assert stats.disk_hits == len(GRID)
        assert stats.hit_rate == 1.0  # no simulation ran
        assert stats.memory_hit_rate == 0.0  # nothing was resident
