"""Tests for the telemetry consume side: histogram bucket quantiles,
SchemaError line/key reporting, version fallback, the RunStore, the
analyzer math (self-time, critical path, cache audit, percentiles),
and the compare CLI's noise-aware regression gate."""

import json

import pytest

from repro.scenarios import reset_default_cache
from repro.telemetry import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    RunStore,
    SCHEMA_VERSION,
    SchemaError,
    load_run,
    metric_events,
    quantile_from_buckets,
    reset_default_tracer,
    resolve_run_store,
    validate_event,
    validate_file,
    version_info,
    write_events,
)
from repro.telemetry.analyze import (
    analyze_run,
    build_span_forest,
    cache_audit,
    critical_path,
    latency_percentiles,
    self_time_table,
    split_events,
)
from repro.telemetry.analyze import main as analyze_main
from repro.telemetry.compare import (
    compare_runs,
    counter_deltas,
    phase_deltas,
)
from repro.telemetry.compare import main as compare_main
from repro.telemetry.metrics import BUCKET_STEP


# ---------------------------------------------------------------------------
# Event builders
# ---------------------------------------------------------------------------
def span(span_id, name, duration, parent=None, start=0.0):
    return {"type": "span", "name": name, "id": span_id, "parent": parent,
            "start_s": start, "duration_s": duration, "attrs": {}}


def counter(name, value):
    return {"type": "metric", "name": name, "kind": "counter", "value": value}


def manifest(command="cmd", phases=None, version="abc123", args=None,
             grid_digest=None):
    return {
        "type": "manifest", "schema": SCHEMA_VERSION, "version": version,
        "version_source": "git", "command": command,
        "args": dict(args or {}), "grid_digest": grid_digest,
        "cache": {"hits": 0, "disk_hits": 0, "misses": 0, "simulations": 0,
                  "risk_hits": 0, "risk_misses": 0, "entries": 0},
        "phases": dict(phases or {}),
    }


def write_run(path, events):
    path.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in events)
    )
    return path


# ---------------------------------------------------------------------------
# Satellite 1: histogram buckets and quantile estimates
# ---------------------------------------------------------------------------
class TestHistogramBuckets:
    def test_bucket_counts_account_for_every_observation(self):
        hist = Histogram("h")
        values = [1e-8, 0.0003, 0.0003, 0.5, 2.0, 1e6]  # under + over flow
        for value in values:
            hist.observe(value)
        snap = hist.snapshot()
        assert sum(n for _, n in snap["buckets"]) == len(values)
        # The overflow observation landed in the null-bounded last slot.
        assert snap["buckets"][-1][0] is None
        # Bounds are strictly ascending (sparse, but ordered).
        bounds = [b for b, _ in snap["buckets"] if b is not None]
        assert bounds == sorted(bounds)

    def test_single_observation_quantiles_are_exact(self):
        hist = Histogram("h")
        hist.observe(0.00123)
        # min == max clamps the bucket interpolation to the observation.
        assert hist.quantile(0.0) == pytest.approx(0.00123)
        assert hist.quantile(0.5) == pytest.approx(0.00123)
        assert hist.quantile(1.0) == pytest.approx(0.00123)

    def test_quantiles_land_in_the_right_bucket(self):
        hist = Histogram("h")
        for _ in range(50):
            hist.observe(1.0)
        for _ in range(50):
            hist.observe(10.0)
        # Median at the top of the 1.0-bounded bucket, exactly.
        assert hist.quantile(0.5) == pytest.approx(1.0)
        # p95 interpolates inside the 10.0-bounded bucket.
        p95 = hist.quantile(0.95)
        assert 10.0 / BUCKET_STEP <= p95 <= 10.0

    def test_empty_and_bucketless_histograms_have_no_quantiles(self):
        assert Histogram("h").quantile(0.5) is None
        # Pre-bucket schema-v1 snapshots: count but no buckets field.
        assert quantile_from_buckets([], 3, 0.1, 2.0, 0.5) is None

    def test_quantile_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            quantile_from_buckets([[1.0, 1]], 1, 1.0, 1.0, 1.5)

    def test_snapshot_validates_and_exports_through_schema(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("cache.fetch.memory_seconds").observe(0.002)
        events = metric_events(registry.snapshot())
        histogram_events = [e for e in events if e["kind"] == "histogram"]
        assert histogram_events and histogram_events[0]["buckets"]
        for event in events:
            assert validate_event(event) == "metric"

    @pytest.mark.parametrize("buckets", [
        [[1.0, 2], [0.5, 1]],            # bounds not ascending
        [[1.0, 2], [2.0, 2]],            # counts sum to 4, not 3
        [[None, 1], [1.0, 2]],           # null bound not last
        [[1.0, 0], [2.0, 3]],            # zero bucket count
        [[float("inf"), 3]],             # non-finite bound
        "not-a-list",
    ])
    def test_malformed_buckets_rejected(self, buckets):
        event = {"type": "metric", "name": "h", "kind": "histogram",
                 "count": 3, "sum": 3.0, "min": 0.5, "max": 2.0,
                 "buckets": buckets}
        with pytest.raises(SchemaError) as excinfo:
            validate_event(event)
        assert excinfo.value.key == "buckets"

    def test_buckets_field_is_optional(self):
        event = {"type": "metric", "name": "h", "kind": "histogram",
                 "count": 3, "sum": 3.0, "min": 0.5, "max": 2.0}
        assert validate_event(event) == "metric"


# ---------------------------------------------------------------------------
# Satellite 2: SchemaError carries the line number and the offending key
# ---------------------------------------------------------------------------
class TestSchemaErrorPointing:
    def test_validate_event_reports_the_offending_key(self):
        with pytest.raises(SchemaError) as excinfo:
            validate_event(span(1, "s", -1.0))
        assert excinfo.value.key == "duration_s"
        assert excinfo.value.lineno is None

    def test_validate_file_stamps_lineno_and_key(self, tmp_path):
        bad = span(2, "bad", 0.1)
        del bad["attrs"]
        path = write_run(tmp_path / "events.jsonl", [span(1, "ok", 0.1), bad])
        with pytest.raises(SchemaError) as excinfo:
            validate_file(path)
        assert excinfo.value.lineno == 2
        assert excinfo.value.key == "attrs"
        assert "line 2" in str(excinfo.value)

    def test_json_decode_errors_carry_lineno(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(json.dumps(span(1, "ok", 0.1)) + "\n{not json\n")
        with pytest.raises(SchemaError) as excinfo:
            validate_file(path)
        assert excinfo.value.lineno == 2
        assert excinfo.value.key is None

    def test_blank_lines_carry_lineno(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text("\n")
        with pytest.raises(SchemaError) as excinfo:
            validate_file(path)
        assert excinfo.value.lineno == 1


# ---------------------------------------------------------------------------
# Satellite 3: version fallback outside a git checkout
# ---------------------------------------------------------------------------
class TestVersionInfo:
    def test_in_repo_source_is_git(self):
        version, source = version_info()
        assert source == "git"
        assert version not in ("", "unknown")

    def test_no_git_directory_falls_back_explicitly(self, tmp_path, monkeypatch):
        from repro.telemetry import manifest as manifest_mod

        monkeypatch.setattr(manifest_mod, "_version_cache", None)
        monkeypatch.setattr(manifest_mod, "_REPO_ROOT", tmp_path)
        assert manifest_mod.version_info() == (
            manifest_mod.VERSION_FALLBACK, "unknown"
        )
        # The fallback is a first-class value the schema accepts.
        event = manifest(version=manifest_mod.VERSION_FALLBACK)
        event["version_source"] = "unknown"
        assert validate_event(event) == "manifest"


# ---------------------------------------------------------------------------
# Tentpole: the RunStore
# ---------------------------------------------------------------------------
class TestRunStore:
    def events(self, command="cmd", phases=None, **kwargs):
        return [span(1, "root", 0.5),
                counter("cache.hits", 3),
                manifest(command=command, phases=phases, **kwargs)]

    def test_ingest_file_indexes_and_roundtrips(self, tmp_path):
        run_file = write_run(tmp_path / "events.jsonl", self.events())
        store = RunStore(tmp_path / "store")
        record = store.ingest(run_file, timestamp=100.0)
        assert record.command == "cmd"
        assert record.events == 3
        assert len(store) == 1
        assert store.load(record) == self.events()
        # The index is plain JSONL, one line per run.
        assert len(store.index_path.read_text().splitlines()) == 1

    def test_reingest_same_timestamp_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.ingest_events(self.events(), timestamp=100.0)
        again = store.ingest_events(self.events(), timestamp=100.0)
        assert first.run_id == again.run_id
        assert len(store) == 1
        # A new timestamp is a new run of the same build+args.
        later = store.ingest_events(self.events(), timestamp=200.0)
        assert later.run_id != first.run_id
        assert len(store) == 2

    def test_ingest_requires_exactly_one_manifest(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="exactly one manifest"):
            store.ingest_events([span(1, "s", 0.1)], timestamp=1.0)
        with pytest.raises(ValueError, match="exactly one manifest"):
            store.ingest_events([manifest(), manifest()], timestamp=1.0)

    def test_ingest_validates_events(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(SchemaError):
            store.ingest_events([span(1, "s", -1.0), manifest()], timestamp=1.0)
        assert len(store) == 0

    def test_resolve_latest_command_and_prefix(self, tmp_path):
        store = RunStore(tmp_path)
        a = store.ingest_events(self.events(command="cmd.a"), timestamp=1.0)
        b = store.ingest_events(self.events(command="cmd.b"), timestamp=2.0)
        assert store.resolve("latest").run_id == b.run_id
        assert store.resolve("latest:cmd.a").run_id == a.run_id
        assert store.resolve(a.run_id[:8]).run_id == a.run_id
        with pytest.raises(ValueError, match="no run id matches"):
            store.resolve("zzzz")
        with pytest.raises(ValueError, match="no runs"):
            store.resolve("latest:cmd.c")

    def test_resolve_ambiguous_prefix(self, tmp_path):
        import os.path

        store = RunStore(tmp_path)
        a = store.ingest_events(self.events(), timestamp=1.0)
        b = store.ingest_events(self.events(), timestamp=2.0)
        shared = os.path.commonprefix([a.run_id, b.run_id])
        with pytest.raises(ValueError, match="ambiguous"):
            store.resolve(shared)

    def test_corrupt_index_lines_are_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        record = store.ingest_events(self.events(), timestamp=1.0)
        with open(store.index_path, "a") as handle:
            handle.write("{torn write\n")
        assert [r.run_id for r in store.records()] == [record.run_id]

    def test_duplicate_index_lines_collapse_to_one_record(self, tmp_path):
        # Racing ingests of the same run can each append an index line;
        # records() must not double-count the run.
        store = RunStore(tmp_path)
        record = store.ingest_events(self.events(), timestamp=1.0)
        with open(store.index_path, "a") as handle:
            handle.write(record.to_line() + "\n")
        assert len(store.index_path.read_text().splitlines()) == 2
        assert [r.run_id for r in store.records()] == [record.run_id]
        assert len(store) == 1

    def test_empty_store_reads_clean(self, tmp_path):
        store = RunStore(tmp_path / "never_written")
        assert store.records() == []
        assert store.latest() is None
        assert not (tmp_path / "never_written").exists()  # lazy: no mkdir

    def test_record_bench_turns_seconds_fields_into_phases(self, tmp_path):
        payload = {"plan_seconds": 0.5, "export_seconds": 0.002,
                   "overhead_fraction": 0.01, "reps": 15,
                   "flag": True}  # bool must not read as a numeric phase
        bench = tmp_path / "BENCH_spot_planner.json"
        bench.write_text(json.dumps(payload))
        store = RunStore(tmp_path / "store")
        record = store.record_bench(bench, timestamp=3.0)
        assert record.command == "bench.spot_planner"
        _, _, stored_manifest = split_events(store.load(record))
        assert stored_manifest["phases"] == {"plan_seconds": 0.5,
                                             "export_seconds": 0.002}
        assert stored_manifest["args"]["reps"] == 15

    def test_resolve_run_store_flag_beats_env_beats_off(self, tmp_path,
                                                        monkeypatch):
        monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
        assert resolve_run_store() is None
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "env"))
        assert resolve_run_store().root == tmp_path / "env"
        assert resolve_run_store(tmp_path / "flag").root == tmp_path / "flag"

    def test_load_run_file_vs_reference(self, tmp_path):
        run_file = write_run(tmp_path / "events.jsonl", self.events())
        label, events = load_run(str(run_file))
        assert label == str(run_file)
        assert events == self.events()
        with pytest.raises(ValueError, match="no run store"):
            load_run("latest")


# ---------------------------------------------------------------------------
# Satellite 4: analyzer math on hand-built trees
# ---------------------------------------------------------------------------
class TestAnalyzerMath:
    def test_self_time_is_duration_minus_children_exactly(self):
        events = [
            span(1, "root", 1.0),
            span(2, "child.fast", 0.25, parent=1),
            span(3, "child.slow", 0.5, parent=1),
            span(4, "grandchild", 0.2, parent=3),
        ]
        roots = build_span_forest(events)
        assert len(roots) == 1
        by_name = {row["name"]: row for row in self_time_table(roots)}
        assert by_name["root"]["self_s"] == pytest.approx(1.0 - 0.25 - 0.5)
        assert by_name["child.slow"]["self_s"] == pytest.approx(0.5 - 0.2)
        assert by_name["child.fast"]["self_s"] == pytest.approx(0.25)
        assert by_name["grandchild"]["self_s"] == pytest.approx(0.2)
        # The identity: self-times sum back to the root's wall-clock.
        assert sum(r["self_s"] for r in by_name.values()) == pytest.approx(1.0)
        # Fractions are over total self-time and sum to 1.
        assert sum(r["self_fraction"] for r in by_name.values()) == pytest.approx(1.0)

    def test_negative_self_time_signals_concurrency(self):
        # Adopted worker spans can overlap: children sum past the parent.
        roots = build_span_forest([
            span(1, "pool", 1.0),
            span(2, "worker", 0.8, parent=1),
            span(3, "worker", 0.7, parent=1),
        ])
        assert roots[0].self_seconds == pytest.approx(1.0 - 1.5)

    def test_critical_path_beats_greedy_descent(self):
        # Greedy picks the fatter child (a: 6) and stops; the DP finds
        # the deep chain under the thinner child (b: 5 + 4 = 9).
        events = [
            span(1, "root", 10.0),
            span(2, "a", 6.0, parent=1),
            span(3, "b", 5.0, parent=1),
            span(4, "b.deep", 4.0, parent=3),
        ]
        path = [node.name for node in critical_path(build_span_forest(events))]
        assert path == ["root", "b", "b.deep"]

    def test_critical_path_over_a_forest_picks_the_tallest_tree(self):
        events = [span(1, "small", 1.0), span(2, "big", 2.0),
                  span(3, "big.child", 1.5, parent=2)]
        path = [n.name for n in critical_path(build_span_forest(events))]
        assert path == ["big", "big.child"]
        assert critical_path([]) == []

    def test_orphan_spans_become_roots(self):
        roots = build_span_forest([span(5, "orphan", 0.1, parent=999)])
        assert [r.name for r in roots] == ["orphan"]

    def test_duplicate_span_ids_are_not_double_counted(self):
        # The schema doesn't force ids unique: the first event wins and
        # later reuses are dropped, so self-time stays exact.
        roots = build_span_forest([
            span(1, "root", 1.0),
            span(2, "child", 0.4, parent=1),
            span(2, "child.dup", 0.3, parent=1),
        ])
        assert len(roots) == 1
        assert [c.name for c in roots[0].children] == ["child"]
        assert roots[0].self_seconds == pytest.approx(0.6)

    def test_critical_path_survives_very_deep_chains(self):
        # A 5000-deep chain would blow the recursion limit on a
        # recursive solve; the iterative walk must not.
        depth = 5000
        events = [span(1, "s0", 1.0)]
        events += [span(i, f"s{i - 1}", 1.0, parent=i - 1)
                   for i in range(2, depth + 1)]
        path = critical_path(build_span_forest(events))
        assert len(path) == depth

    def test_cache_audit_rates_match_cachestats_semantics(self):
        metrics = [
            counter("cache.hits", 6), counter("cache.disk_hits", 2),
            counter("cache.misses", 2), counter("cache.simulations", 2),
            counter("cache.risk_hits", 3), counter("cache.risk_misses", 1),
            counter("store.read_hits", 2), counter("store.read_misses", 1),
            counter("store.writes", 4), counter("store.corrupt_entries", 1),
        ]
        audit = cache_audit(metrics)
        assert audit["lookups"] == 10
        assert audit["hit_rate"] == pytest.approx(0.8)          # any tier
        assert audit["memory_hit_rate"] == pytest.approx(0.6)   # memory only
        assert audit["simulations_per_lookup"] == pytest.approx(0.2)
        assert audit["risk_hit_rate"] == pytest.approx(0.75)
        assert audit["store_reads"] == 3
        assert audit["store_writes"] == 4
        assert audit["store_corrupt_entries"] == 1

    def test_cache_audit_zero_lookups_is_zero_not_nan(self):
        audit = cache_audit([])
        assert audit["hit_rate"] == 0.0
        assert audit["simulations_per_lookup"] == 0.0

    def test_latency_percentiles_skip_empty_histograms(self):
        hist = Histogram("cache.fetch.memory_seconds")
        for value in (0.001, 0.002, 0.004):
            hist.observe(value)
        events = metric_events({
            "cache.fetch.memory_seconds": hist.snapshot(),
            "cache.fetch.disk_seconds": Histogram("d").snapshot(),
        })
        summaries = latency_percentiles(events)
        assert list(summaries) == ["cache.fetch.memory_seconds"]
        summary = summaries["cache.fetch.memory_seconds"]
        assert summary["count"] == 3
        assert 0.001 <= summary["p50_s"] <= 0.004
        assert 0.001 <= summary["p95_s"] <= 0.004
        assert summary["p50_s"] <= summary["p95_s"]

    def test_analyze_run_full_profile(self):
        events = [
            span(1, "root", 1.0),
            span(2, "child", 0.6, parent=1),
            counter("cache.hits", 1),
            manifest(command="cmd", phases={"root": 1.0, "child": 0.6}),
        ]
        profile = analyze_run(events)
        assert profile["command"] == "cmd"
        assert profile["version_source"] == "git"
        assert profile["spans"] == 2
        assert profile["critical_path_seconds"] == pytest.approx(1.0)
        assert [hop["name"] for hop in profile["critical_path"]] == [
            "root", "child"]
        assert profile["phases"] == {"child": 0.6, "root": 1.0}


# ---------------------------------------------------------------------------
# The compare gate
# ---------------------------------------------------------------------------
class TestCompare:
    def test_regression_needs_relative_and_absolute_slowdown(self):
        rows = phase_deltas({"slow": 1.0, "micro": 0.001},
                            {"slow": 1.5, "micro": 0.005},
                            threshold=0.2, min_seconds=0.01)
        verdicts = {row["phase"]: row["verdict"] for row in rows}
        assert verdicts["slow"] == "regression"       # 50% and 0.5 s slower
        assert verdicts["micro"] == "ok"              # 5x but under the floor

    def test_improvement_is_symmetric(self):
        rows = phase_deltas({"p": 1.5}, {"p": 1.0})
        assert rows[0]["verdict"] == "improvement"

    def test_added_and_removed_phases_never_gate(self):
        result = compare_runs(
            [manifest(phases={"old": 5.0})],
            [manifest(phases={"new": 5.0})],
        )
        verdicts = {row["phase"]: row["verdict"] for row in result["phases"]}
        assert verdicts == {"old": "removed", "new": "added"}
        assert result["verdict"] == "ok"

    def test_counter_deltas_only_report_changes(self):
        rows = counter_deltas({"cache.hits": 3, "cache.misses": 1},
                              {"cache.hits": 5, "cache.misses": 1})
        assert rows == [{"counter": "cache.hits", "baseline": 3,
                         "candidate": 5, "delta": 2}]

    def test_identical_runs_diff_to_zero(self):
        events = [counter("cache.hits", 3), manifest(phases={"p": 1.0})]
        result = compare_runs(events, events)
        assert result["verdict"] == "ok"
        assert result["counters"] == []

    def test_cli_exit_codes_gate_on_regression(self, tmp_path, capsys):
        base = write_run(tmp_path / "base.jsonl",
                         [manifest(phases={"plan": 1.0})])
        slow = write_run(tmp_path / "slow.jsonl",
                         [manifest(phases={"plan": 2.0})])
        assert compare_main([str(base), str(slow), "--threshold", "0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # The improvement direction and a loose threshold both pass.
        assert compare_main([str(slow), str(base), "--threshold", "0.2"]) == 0
        assert compare_main([str(base), str(slow), "--threshold", "1.5"]) == 0

    def test_cli_json_payload_names_both_runs(self, tmp_path, capsys):
        base = write_run(tmp_path / "base.jsonl",
                         [manifest(phases={"plan": 1.0})])
        assert compare_main([str(base), str(base), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == str(base)
        assert payload["verdict"] == "ok"

    def test_cli_resolution_errors_exit_2(self, tmp_path, capsys,
                                          monkeypatch):
        monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
        assert compare_main(["latest"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_baseline_latest_diffs_the_two_newest_runs(self, tmp_path):
        store = RunStore(tmp_path)
        store.ingest_events([manifest(phases={"plan": 1.0})], timestamp=1.0)
        store.ingest_events([manifest(phases={"plan": 4.0})], timestamp=2.0)
        # candidate = latest (4.0), baseline = the run before it (1.0).
        assert compare_main(["latest", "--baseline", "latest",
                             "--store", str(tmp_path),
                             "--threshold", "0.2"]) == 1
        # Flip: explicit oldest-as-candidate sees an improvement.
        first = store.records()[0].run_id
        assert compare_main([first, "--baseline", "latest",
                             "--store", str(tmp_path)]) == 0

    def test_file_candidate_never_baselines_against_its_own_copy(
            self, tmp_path, capsys):
        # A file-path candidate carries the path as its label, so run-id
        # exclusion alone would let the baseline resolve to the stored
        # copy of the same run and the gate would diff a run against
        # itself. Content equality must skip that copy.
        store = RunStore(tmp_path / "store")
        store.ingest_events([manifest(phases={"plan": 1.0})], timestamp=1.0)
        slow = [manifest(phases={"plan": 4.0})]
        store.ingest_events(slow, timestamp=2.0)
        slow_file = write_run(tmp_path / "slow.jsonl", slow)
        assert compare_main([str(slow_file), "--baseline", "latest",
                             "--store", str(tmp_path / "store"),
                             "--threshold", "0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        # A store holding only copies of the candidate has no baseline.
        lone = RunStore(tmp_path / "lone")
        lone.ingest_events(slow, timestamp=3.0)
        assert compare_main([str(slow_file), "--baseline", "latest",
                             "--store", str(tmp_path / "lone")]) == 2
        assert "no baseline run" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# End to end: CLI --run-store -> store -> analyze -> compare
# ---------------------------------------------------------------------------
class TestRunStoreWiring:
    @pytest.fixture
    def fresh_globals(self):
        tracer = reset_default_tracer()
        cache = reset_default_cache()
        yield tracer, cache
        reset_default_tracer()
        reset_default_cache()

    SPOT_ARGS = ["--model", "blackmamba", "--gpu", "a40", "--provider",
                 "cudo", "--num-gpus", "1", "--density", "sparse",
                 "--interconnect", "pcie-gen4"]

    def test_plan_ingests_then_analyze_and_compare_consume(
            self, tmp_path, capsys, fresh_globals, monkeypatch):
        from repro.spot.plan import main as spot_plan_main

        monkeypatch.delenv("REPRO_RUN_STORE", raising=False)
        store_dir = tmp_path / "runstore"
        for _ in range(2):
            assert spot_plan_main(
                self.SPOT_ARGS + ["--run-store", str(store_dir)]) == 0
            reset_default_tracer()
            reset_default_cache()
        capsys.readouterr()
        store = RunStore(store_dir)
        records = store.records()
        assert [r.command for r in records] == ["repro.spot.plan"] * 2
        assert records[0].run_id != records[1].run_id

        assert analyze_main(["latest", "--store", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out and "cache audit" in out

        assert compare_main(["latest", "--baseline", "latest",
                             "--store", str(store_dir),
                             "--threshold", "5.0"]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_env_var_alone_enables_recording(self, tmp_path, capsys,
                                             fresh_globals, monkeypatch):
        from repro.spot.plan import main as spot_plan_main

        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path / "env_store"))
        assert spot_plan_main(self.SPOT_ARGS) == 0
        capsys.readouterr()
        assert len(RunStore(tmp_path / "env_store")) == 1

    def test_analyze_reads_telemetry_out_files_directly(
            self, tmp_path, capsys):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        run_file = tmp_path / "events.jsonl"
        write_run(run_file, [
            span(1, "root", 1.0),
            *metric_events(registry.snapshot()),
            manifest(phases={"root": 1.0}),
        ])
        assert analyze_main([str(run_file), "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["run"] == str(run_file)
        assert profile["critical_path_seconds"] == pytest.approx(1.0)
