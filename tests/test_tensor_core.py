"""Tests for the autograd engine core (Tensor, backward mechanics)."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, ones, randn, tensor, unbroadcast, zeros
from repro.tensor import is_grad_enabled, set_grad_enabled, enable_grad


class TestTensorConstruction:
    def test_wraps_numpy_array(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6

    def test_int_data_promoted_to_float(self):
        t = Tensor([1, 2, 3])
        assert np.issubdtype(t.dtype, np.floating)

    def test_nested_tensor_unwrapped(self):
        inner = Tensor([1.0, 2.0])
        outer = Tensor(inner)
        assert np.array_equal(outer.data, inner.data)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_item_on_multi_element_raises_clear_error(self):
        with pytest.raises(ValueError, match=r"item\(\) requires a 1-element tensor"):
            Tensor([1.0, 2.0]).item()
        with pytest.raises(ValueError, match=r"got shape \(2, 2\)"):
            Tensor([[1.0, 2.0], [3.0, 4.0]]).item()

    def test_factories(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4
        r = randn((3, 3), rng=np.random.default_rng(0), scale=0.5)
        assert r.shape == (3, 3)
        assert tensor([1.0]).shape == (1,)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))


class TestBackwardMechanics:
    def test_scalar_backward_seeds_ones(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        (a * a).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0, 6.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_nonscalar_needs_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_explicit_grad_vector(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_grad_accumulates_across_backwards(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        (a * 2).sum().backward()
        np.testing.assert_allclose(a.grad, [4.0])

    def test_diamond_graph_accumulates_once_per_path(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [7.0])

    def test_reused_tensor_in_one_expression(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a * a).sum().backward()  # d/da a^3 = 3a^2
        np.testing.assert_allclose(a.grad, [12.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).sum().backward()
        a.zero_grad()
        assert a.grad is None

    def test_deep_chain_no_recursion_error(self):
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(3000):
            x = x + 1.0
        x.sum().backward()
        np.testing.assert_allclose(a.grad, [1.0])


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad
        assert b._ctx is None

    def test_nesting_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with enable_grad():
                assert is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            assert not is_grad_enabled()
        finally:
            set_grad_enabled(True)


class TestUnbroadcast:
    def test_identity_when_same_shape(self):
        g = np.ones((2, 3))
        assert unbroadcast(g, (2, 3)).shape == (2, 3)

    def test_sums_leading_axis(self):
        g = np.ones((4, 2, 3))
        out = unbroadcast(g, (2, 3))
        np.testing.assert_allclose(out, np.full((2, 3), 4.0))

    def test_sums_size_one_axis(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, (2, 1))
        np.testing.assert_allclose(out, np.full((2, 1), 3.0))

    def test_scalar_target(self):
        g = np.ones((2, 3))
        out = unbroadcast(g, ())
        assert out == pytest.approx(6.0)
