"""Gradient correctness of every op, checked against finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, ops


def check_grad(build, arrays, tol=1e-4, eps=1e-6):
    """Compare autograd gradients of ``build(*tensors).sum()`` against
    central finite differences at a few random positions of each input."""
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = build(*tensors)
    loss = (out * out).sum()
    loss.backward()

    rng = np.random.default_rng(0)
    for t in tensors:
        flat_indices = rng.choice(t.size, size=min(4, t.size), replace=False)
        for flat in flat_indices:
            index = np.unravel_index(flat, t.shape)
            original = t.data[index]

            def value_at(v):
                t.data[index] = v
                with no_grad():
                    o = build(*tensors)
                    result = (o * o).sum().item()
                t.data[index] = original
                return result

            numeric = (value_at(original + eps) - value_at(original - eps)) / (2 * eps)
            assert t.grad[index] == pytest.approx(numeric, abs=tol, rel=tol), (
                f"grad mismatch at {index}: {t.grad[index]} vs {numeric}"
            )


RNG = np.random.default_rng(99)
A23 = RNG.standard_normal((2, 3))
B23 = RNG.standard_normal((2, 3))
POS23 = RNG.uniform(0.5, 2.0, (2, 3))


class TestBinaryOps:
    def test_add(self):
        check_grad(lambda a, b: a + b, [A23, B23])

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, [A23, RNG.standard_normal((3,))])

    def test_sub(self):
        check_grad(lambda a, b: a - b, [A23, B23])

    def test_mul(self):
        check_grad(lambda a, b: a * b, [A23, B23])

    def test_mul_broadcast_column(self):
        check_grad(lambda a, b: a * b, [A23, RNG.standard_normal((2, 1))])

    def test_div(self):
        check_grad(lambda a, b: a / b, [A23, POS23])

    def test_scalar_rhs(self):
        check_grad(lambda a: a * 3.0 + 1.0, [A23])

    def test_scalar_lhs(self):
        check_grad(lambda a: 2.0 - a, [A23])

    def test_rdiv(self):
        check_grad(lambda a: 1.0 / a, [POS23])

    def test_pow(self):
        check_grad(lambda a: a**3, [POS23])

    def test_neg(self):
        check_grad(lambda a: -a, [A23])


class TestMatmul:
    def test_2d(self):
        check_grad(lambda a, b: a @ b, [RNG.standard_normal((3, 4)), RNG.standard_normal((4, 2))])

    def test_batched(self):
        check_grad(
            lambda a, b: a @ b,
            [RNG.standard_normal((2, 3, 4)), RNG.standard_normal((2, 4, 2))],
        )

    def test_broadcast_batch(self):
        check_grad(
            lambda a, b: a @ b,
            [RNG.standard_normal((2, 3, 4)), RNG.standard_normal((4, 2))],
        )

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ops.matmul(Tensor(np.ones(3)), Tensor(np.ones((3, 2))))


class TestUnaryOps:
    @pytest.mark.parametrize(
        "fn",
        [ops.exp, ops.tanh, ops.sigmoid, ops.relu, ops.gelu, ops.silu, ops.softplus, ops.abs],
        ids=["exp", "tanh", "sigmoid", "relu", "gelu", "silu", "softplus", "abs"],
    )
    def test_elementwise_grads(self, fn):
        # Shift away from relu/abs kinks for finite differences.
        data = RNG.standard_normal((2, 3)) + 0.3
        check_grad(lambda a: fn(a), [data])

    def test_log(self):
        check_grad(lambda a: ops.log(a), [POS23])

    def test_sqrt(self):
        check_grad(lambda a: ops.sqrt(a), [POS23])

    def test_sigmoid_range(self):
        out = ops.sigmoid(Tensor(RNG.standard_normal((50,)) * 5))
        assert np.all(out.data > 0) and np.all(out.data < 1)

    def test_gelu_matches_reference_at_zero(self):
        assert ops.gelu(Tensor([0.0])).data[0] == pytest.approx(0.0)

    def test_silu_matches_x_times_sigmoid(self):
        x = RNG.standard_normal((10,))
        np.testing.assert_allclose(
            ops.silu(Tensor(x)).data, x / (1 + np.exp(-x)), rtol=1e-12
        )


class TestSoftmaxAndReductions:
    def test_softmax_rows_sum_to_one(self):
        out = ops.softmax(Tensor(RNG.standard_normal((4, 7))), axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4), rtol=1e-12)

    def test_softmax_grad(self):
        check_grad(lambda a: ops.softmax(a, axis=-1), [A23])

    def test_softmax_stability_large_values(self):
        out = ops.softmax(Tensor(np.array([[1000.0, 1000.0]])), axis=-1)
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_log_softmax_grad(self):
        check_grad(lambda a: ops.log_softmax(a, axis=-1), [A23])

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.standard_normal((3, 5)))
        np.testing.assert_allclose(
            ops.log_softmax(x).data, np.log(ops.softmax(x).data), rtol=1e-10
        )

    def test_sum_axis_grads(self):
        check_grad(lambda a: ops.sum(a, axis=0), [A23])
        check_grad(lambda a: ops.sum(a, axis=1, keepdims=True), [A23])
        check_grad(lambda a: ops.sum(a), [A23])

    def test_mean_grads(self):
        check_grad(lambda a: ops.mean(a, axis=-1), [A23])
        check_grad(lambda a: ops.mean(a), [A23])

    def test_mean_value(self):
        assert ops.mean(Tensor([1.0, 2.0, 3.0])).item() == pytest.approx(2.0)

    def test_max_grad_routes_to_argmax(self):
        a = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        ops.max(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_evenly(self):
        a = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
        ops.max(a, axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])


class TestShapeOps:
    def test_reshape_grad(self):
        check_grad(lambda a: ops.reshape(a, (3, 2)), [A23])

    def test_transpose_grad(self):
        check_grad(lambda a: ops.transpose(a), [A23])

    def test_transpose_axes_grad(self):
        check_grad(lambda a: ops.transpose(a, (1, 0, 2)), [RNG.standard_normal((2, 3, 4))])

    def test_getitem_slice_grad(self):
        check_grad(lambda a: a[0:1, 1:], [A23])

    def test_getitem_int_array(self):
        a = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        idx = np.array([0, 2, 2])
        out = a[idx]
        out.sum().backward()
        assert a.grad[2, 0] == pytest.approx(2.0)  # row 2 used twice
        assert a.grad[1, 0] == pytest.approx(0.0)

    def test_pad_grad(self):
        check_grad(lambda a: ops.pad(a, [(1, 0), (0, 2)]), [A23])

    def test_concat_grad(self):
        check_grad(lambda a, b: ops.concat([a, b], axis=1), [A23, B23])

    def test_stack_shapes(self):
        out = ops.stack([Tensor(A23), Tensor(B23)], axis=0)
        assert out.shape == (2, 2, 3)


class TestGatherScatter:
    def test_embedding_grad_scatter_adds(self):
        w = Tensor(RNG.standard_normal((6, 4)), requires_grad=True)
        ids = np.array([[1, 1], [3, 0]])
        ops.embedding(w, ids).sum().backward()
        assert w.grad[1].sum() == pytest.approx(8.0)  # used twice x dim 4
        assert w.grad[2].sum() == pytest.approx(0.0)

    def test_take_rows_grad(self):
        a = Tensor(RNG.standard_normal((5, 3)), requires_grad=True)
        ops.take_rows(a, np.array([4, 4, 1])).sum().backward()
        assert a.grad[4, 0] == pytest.approx(2.0)

    def test_scatter_rows_forward_accumulates(self):
        src = Tensor(np.ones((3, 2)))
        out = ops.scatter_rows(src, np.array([0, 0, 2]), 4)
        np.testing.assert_allclose(out.data, [[2, 2], [0, 0], [1, 1], [0, 0]])

    def test_scatter_rows_grad(self):
        src = Tensor(np.ones((3, 2)), requires_grad=True)
        out = ops.scatter_rows(src, np.array([0, 0, 2]), 4)
        (out * Tensor(np.arange(8.0).reshape(4, 2))).sum().backward()
        np.testing.assert_allclose(src.grad, [[0, 1], [0, 1], [4, 5]])

    def test_take_then_scatter_roundtrip_identity_grad(self):
        a = Tensor(RNG.standard_normal((4, 2)), requires_grad=True)
        idx = np.array([0, 1, 2, 3])
        out = ops.scatter_rows(ops.take_rows(a, idx), idx, 4)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 2)))


class TestWhereDropout:
    def test_where_selects(self):
        cond = np.array([[True, False, True]])
        out = ops.where(cond, Tensor([[1.0, 1.0, 1.0]]), Tensor([[2.0, 2.0, 2.0]]))
        np.testing.assert_allclose(out.data, [[1.0, 2.0, 1.0]])

    def test_where_grad_masks(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        b = Tensor(np.ones((1, 3)), requires_grad=True)
        cond = np.array([[True, False, True]])
        ops.where(cond, a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [[1.0, 0.0, 1.0]])
        np.testing.assert_allclose(b.grad, [[0.0, 1.0, 0.0]])

    def test_dropout_eval_is_identity(self):
        x = Tensor(RNG.standard_normal((10,)))
        out = ops.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_dropout_scales_survivors(self):
        x = Tensor(np.ones(10000))
        out = ops.dropout(x, 0.25, np.random.default_rng(0), training=True)
        kept = out.data[out.data > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)
        assert abs(out.data.mean() - 1.0) < 0.05

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            ops.dropout(Tensor([1.0]), 1.0, np.random.default_rng(0))


class TestScanDiag:
    def test_matches_naive_recurrence(self):
        decay = RNG.uniform(0.1, 0.9, (2, 6, 3))
        x = RNG.standard_normal((2, 6, 3))
        out = ops.scan_diag(Tensor(decay), Tensor(x)).data
        state = np.zeros((2, 3))
        for t in range(6):
            state = decay[:, t] * state + x[:, t]
            np.testing.assert_allclose(out[:, t], state, rtol=1e-12)

    def test_grads(self):
        check_grad(
            lambda d, x: ops.scan_diag(d, x),
            [RNG.uniform(0.2, 0.8, (2, 5, 3)), RNG.standard_normal((2, 5, 3))],
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            ops.scan_diag(Tensor(np.ones((1, 2, 3))), Tensor(np.ones((1, 2, 4))))

    def test_zero_decay_is_identity(self):
        x = RNG.standard_normal((1, 4, 2))
        out = ops.scan_diag(Tensor(np.zeros_like(x)), Tensor(x))
        np.testing.assert_allclose(out.data, x)
