"""Property-based tests (hypothesis) on autograd engine invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, ops, unbroadcast

finite = st.floats(min_value=-10, max_value=10, allow_nan=False, allow_infinity=False)
small_shape = st.tuples(st.integers(1, 4), st.integers(1, 4))


def small_array(shape=None):
    return arrays(np.float64, shape if shape is not None else small_shape, elements=finite)


@st.composite
def array_pair(draw):
    """Two arrays sharing one shape."""
    shape = draw(small_shape)
    x = draw(arrays(np.float64, shape, elements=finite))
    y = draw(arrays(np.float64, shape, elements=finite))
    return x, y


@settings(max_examples=40, deadline=None)
@given(small_array(), st.floats(min_value=-3, max_value=3, allow_nan=False))
def test_backward_linearity_in_output_grad(data, scale):
    """grad(scale * L) == scale * grad(L)."""
    a = Tensor(data, requires_grad=True)
    (a * a).sum().backward()
    base = a.grad.copy()
    a.zero_grad()
    ((a * a).sum() * scale).backward()
    np.testing.assert_allclose(a.grad, scale * base, rtol=1e-8, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(small_array())
def test_softmax_is_probability_distribution(data):
    out = ops.softmax(Tensor(data), axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(small_array())
def test_softmax_shift_invariance(data):
    a = ops.softmax(Tensor(data), axis=-1).data
    b = ops.softmax(Tensor(data + 7.5), axis=-1).data
    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(array_pair())
def test_add_commutes(pair):
    x, y = pair
    np.testing.assert_allclose((Tensor(x) + Tensor(y)).data, (Tensor(y) + Tensor(x)).data)


@settings(max_examples=40, deadline=None)
@given(small_array())
def test_double_negation(x):
    np.testing.assert_allclose((-(-Tensor(x))).data, x)


@settings(max_examples=30, deadline=None)
@given(
    arrays(np.float64, st.tuples(st.integers(1, 3), st.integers(1, 5), st.integers(1, 3)),
           elements=st.floats(min_value=0.0, max_value=0.95)),
)
def test_scan_bounded_by_geometric_sum(decay):
    """With |x| <= 1 and decay in [0, 1), |h_t| <= 1/(1-max_decay)."""
    x = np.ones_like(decay)
    out = ops.scan_diag(Tensor(decay), Tensor(x)).data
    bound = 1.0 / (1.0 - decay.max() + 1e-12)
    assert np.all(np.abs(out) <= bound + 1e-6)


@settings(max_examples=40, deadline=None)
@given(small_array())
def test_unbroadcast_then_sum_preserves_total(grad):
    """Summed gradient mass is preserved when unbroadcasting to (1, n)."""
    target_shape = (1, grad.shape[1])
    reduced = unbroadcast(grad.copy(), target_shape)
    np.testing.assert_allclose(reduced.sum(), grad.sum(), rtol=1e-9)


@settings(max_examples=30, deadline=None)
@given(array_pair())
def test_mul_gradient_symmetry(pair):
    """d(x*y)/dx == y and d(x*y)/dy == x under a sum loss."""
    x, y = pair
    a = Tensor(x, requires_grad=True)
    b = Tensor(y, requires_grad=True)
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, y, rtol=1e-9, atol=1e-12)
    np.testing.assert_allclose(b.grad, x, rtol=1e-9, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6))
def test_scatter_take_adjointness(n_rows, n_take):
    """<take(A, idx), B> == <A, scatter(B, idx)> (gather/scatter are adjoint)."""
    rng = np.random.default_rng(n_rows * 7 + n_take)
    a = rng.standard_normal((n_rows, 3))
    b = rng.standard_normal((n_take, 3))
    idx = rng.integers(0, n_rows, size=n_take)
    lhs = (ops.take_rows(Tensor(a), idx).data * b).sum()
    rhs = (a * ops.scatter_rows(Tensor(b), idx, n_rows).data).sum()
    assert abs(lhs - rhs) < 1e-9
