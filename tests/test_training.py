"""Tests for the fine-tuning harness: trainer, evaluation, load balance."""

import numpy as np
import pytest

from repro.models import BLACKMAMBA_TINY, BlackMambaModel, MIXTRAL_TINY, MixtralModel
from repro.training import (
    FineTuner,
    evaluate,
    evaluate_choice,
    evaluate_exact,
    measure_load_distribution,
    pretrain_language_model,
)
from repro.profiling import measure_throughput, profile_training_stages


@pytest.fixture(scope="module")
def small_mixtral():
    return MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False,
                        rng=np.random.default_rng(5))


class TestFineTuner:
    def test_loss_decreases_over_epochs(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        tuner = FineTuner(model, tiny_suite.commonsense15k, batch_size=16, learning_rate=3e-3)
        history = tuner.train(num_epochs=3)
        assert history.losses[-1] < history.losses[0]

    def test_history_metrics_populated(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        tuner = FineTuner(model, tiny_suite.commonsense15k.subset(32), batch_size=8, learning_rate=1e-3)
        history = tuner.train(num_epochs=2, eval_fn=lambda: 0.5)
        assert len(history.epochs) == 2
        first = history.epochs[0]
        assert first.num_queries == 32
        assert first.queries_per_second > 0
        assert first.eval_accuracy == 0.5
        assert history.best_accuracy() == 0.5

    def test_aux_loss_weight_enables_tracking(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        FineTuner(model, tiny_suite.commonsense15k.subset(16), batch_size=8,
                  learning_rate=1e-3, aux_loss_weight=0.01)
        assert all(m.track_aux_loss for m in model.moe_layers())


class TestPretraining:
    def test_pretrain_reduces_lm_loss(self, tiny_suite, tiny_corpus, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        first = pretrain_language_model(model, tiny_corpus, steps=1, batch_size=16)
        last = pretrain_language_model(model, tiny_corpus, steps=40, batch_size=16)
        assert last < first

    def test_aux_loss_disabled_after_pretrain(self, tiny_corpus, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        pretrain_language_model(model, tiny_corpus, steps=2, batch_size=8, aux_loss_weight=0.01)
        assert all(not m.track_aux_loss for m in model.moe_layers())


class TestEvaluation:
    def test_choice_accuracy_range(self, tiny_suite, small_mixtral):
        acc = evaluate_choice(small_mixtral, tiny_suite.hellaswag, limit=20)
        assert 0.0 <= acc <= 1.0

    def test_untrained_model_near_chance_on_choices(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False,
                             rng=np.random.default_rng(99))
        acc = evaluate_choice(model, tiny_suite.hellaswag, limit=60)
        assert acc < 0.6  # 4-way chance is 0.25; random model must not ace it

    def test_exact_untrained_near_zero(self, tiny_suite, small_mixtral):
        acc = evaluate_exact(small_mixtral, tiny_suite.gsm8k, limit=40)
        assert acc < 0.25

    def test_dispatch_by_kind(self, tiny_suite, small_mixtral):
        assert isinstance(evaluate(small_mixtral, tiny_suite.hellaswag, limit=5), float)
        assert isinstance(evaluate(small_mixtral, tiny_suite.gsm8k, limit=5), float)

    def test_restores_training_mode(self, tiny_suite, small_mixtral):
        small_mixtral.train()
        evaluate_choice(small_mixtral, tiny_suite.hellaswag, limit=3)
        assert small_mixtral.training

    def test_empty_dataset_raises(self, tiny_suite, small_mixtral):
        empty = tiny_suite.hellaswag.subset(0)
        with pytest.raises(ValueError):
            evaluate_choice(small_mixtral, empty)


class TestLoadBalance:
    def test_measurement_shapes(self, tiny_suite, small_mixtral):
        dist = measure_load_distribution(small_mixtral, tiny_suite.commonsense15k, num_queries=40)
        assert dist.tokens_per_query.shape == (8,)
        assert dist.num_queries == 40

    def test_shares_sum_to_one(self, tiny_suite, small_mixtral):
        dist = measure_load_distribution(small_mixtral, tiny_suite.commonsense15k, num_queries=40)
        assert dist.normalized_shares.sum() == pytest.approx(1.0)

    def test_variance_zero_iff_uniform(self):
        from repro.training import LoadDistribution

        uniform = LoadDistribution(tokens_per_query=np.full(8, 5.0), num_queries=10)
        skewed = LoadDistribution(tokens_per_query=np.array([40, 0, 0, 0, 0, 0, 0, 0.0]), num_queries=10)
        assert uniform.variance == 0.0
        assert skewed.variance > 0
        assert uniform.imbalance_ratio() == pytest.approx(1.0)
        assert skewed.imbalance_ratio() == pytest.approx(8.0)

    def test_tokens_per_query_scale(self, tiny_suite, small_mixtral):
        """Sparse top-2 routing: per-expert loads must sum to ~2x tokens/query."""
        small_mixtral.set_sparsity(dense=False)
        dist = measure_load_distribution(small_mixtral, tiny_suite.commonsense15k, num_queries=50)
        mean_len = tiny_suite.commonsense15k.subset(50).seq_lengths().mean()
        assert dist.tokens_per_query.sum() == pytest.approx(2 * mean_len, rel=0.2)


class TestWallclockProfiling:
    def test_stage_timings_positive(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        timings = profile_training_stages(model, tiny_suite.commonsense15k.subset(32),
                                          batch_size=8, num_steps=4)
        assert timings.steps == 4
        assert timings.forward > 0 and timings.backward > 0 and timings.optimizer > 0
        shares = timings.shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_backward_is_substantial(self, tiny_suite, rng):
        """Backward is a major stage. (On the numpy substrate, forward
        includes Python graph construction, so the GPU-world `backward >
        forward` relation is not guaranteed here — the simulator tests pin
        that claim instead.)"""
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        timings = profile_training_stages(model, tiny_suite.commonsense15k.subset(64),
                                          batch_size=16, num_steps=4)
        assert timings.backward > 0.4 * timings.forward

    def test_measured_throughput_positive(self, tiny_suite, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        qps = measure_throughput(model, tiny_suite.commonsense15k, batch_size=16, num_queries=48)
        assert qps > 0
